"""Algorithm 1 — ``fast-gossiping`` in the traditional random phone call model.

The protocol trades running time for message complexity: it completes
gossiping on random graphs of expected degree ``Omega(log^{2+eps} n)`` in
``O(log^2 n / log log n)`` rounds using only ``O(n log n / log log n)``
transmissions (Theorem 1 of the paper).  It runs in three phases:

Phase I — *distribution*: every node pushes its combined message to a random
neighbour for a small number of steps, so that each message reaches
``polylog(n)`` nodes.

Phase II — *random walks*: in each of ``O(log n / log log n)`` rounds a small
random subset of nodes launch random walks that aggregate messages while they
mix through the graph; the nodes at which walks reside afterwards perform a
short push broadcast, multiplying the informed sets by ``Theta(sqrt(log n))``
per round while only the walk holders pay for communication.

Phase III — *broadcast*: a plain push–pull procedure finishes the remaining
(small) gap.  Following the empirical section of the paper, this phase runs
until the entire graph is informed.

All three phases run on the batched knowledge kernels (push rounds, walk
deliveries and the Phase III exchange-with-saturation-filter), which
dispatch through the active kernel backend (:mod:`repro.engine.backends`):
the driver is backend-agnostic and its trajectories are bit-identical across
the ``numpy``, ``c`` and ``c-threads`` backends at every thread count
(``REPRO_KERNEL_BACKEND`` / ``REPRO_KERNEL_THREADS``; see
``docs/parallelism.md``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.channels import open_channels
from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.knowledge import KnowledgeMatrix, adaptive_knowledge
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .completion import CompletionTracker
from .parameters import FastGossipingParameters, FastGossipingSchedule, tuned_fast_gossiping
from .protocol import GossipProtocol
from .random_walks import start_walks
from .results import GossipResult

__all__ = ["FastGossiping"]


class FastGossiping(GossipProtocol):
    """Algorithm 1 of the paper (adapted ``fast-gossiping`` of Berenbrink et al.).

    Parameters
    ----------
    params:
        Phase-length constants.  Defaults to the simulation-tuned constants of
        Table 1 (:func:`~repro.core.parameters.tuned_fast_gossiping`).
    """

    name = "fast-gossiping"

    def __init__(self, params: Optional[FastGossipingParameters] = None) -> None:
        self.params = params or tuned_fast_gossiping()

    # ------------------------------------------------------------------ #
    # Protocol execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
        record_trace: bool = False,
    ) -> GossipResult:
        generator = self._prepare(graph, rng)
        if not failures.is_empty() and failures.inject_at != "start":
            raise ValueError(
                "FastGossiping only supports failures injected at 'start'"
            )
        alive = failures.alive_mask(graph.n)
        alive_nodes = np.flatnonzero(alive)
        alive_mask: Optional[np.ndarray] = None if failures.is_empty() else alive

        schedule = self.params.resolve(graph.n)
        # Frontier (sparsity-aware) knowledge: Phase I distribution steps are
        # the sparse extreme; rows ratchet dense as walks and broadcasts fill
        # them (walk deliveries notify the matrix of their direct writes).
        knowledge = adaptive_knowledge(graph.n)
        ledger = TransmissionLedger(graph.n)
        trace = SpreadingTrace(enabled=record_trace)

        self._phase_distribution(graph, knowledge, ledger, trace, generator, schedule, alive_mask, alive_nodes)
        walk_stats = self._phase_random_walks(
            graph, knowledge, ledger, trace, generator, schedule, alive_mask, alive_nodes
        )
        completed = self._phase_broadcast(
            graph, knowledge, ledger, trace, generator, schedule, alive_mask, alive_nodes
        )

        return GossipResult(
            protocol=self.name,
            n_nodes=graph.n,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            knowledge=knowledge,
            trace=trace if record_trace else None,
            extras={
                "schedule": schedule.as_dict(),
                "total_walks": walk_stats["total_walks"],
                "total_walk_moves": walk_stats["total_walk_moves"],
                "alive_nodes": int(alive_nodes.size),
            },
        )

    # ------------------------------------------------------------------ #
    # Phase I — distribution
    # ------------------------------------------------------------------ #
    def _phase_distribution(
        self,
        graph: Adjacency,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        trace: SpreadingTrace,
        rng: np.random.Generator,
        schedule: FastGossipingSchedule,
        alive_mask: Optional[np.ndarray],
        alive_nodes: np.ndarray,
    ) -> None:
        ledger.begin_phase("phase1-distribution")
        for _ in range(schedule.distribution_steps):
            channels = open_channels(graph, rng, participants=alive_nodes, alive=alive_mask)
            ledger.record_opens(alive_nodes)
            knowledge.apply_transmissions(channels.callers, channels.targets)
            ledger.record_pushes(channels.callers)
            ledger.end_round()
            trace.record(ledger.rounds - 1, "phase1-distribution", knowledge)
        ledger.end_phase()

    # ------------------------------------------------------------------ #
    # Phase II — random walks
    # ------------------------------------------------------------------ #
    def _phase_random_walks(
        self,
        graph: Adjacency,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        trace: SpreadingTrace,
        rng: np.random.Generator,
        schedule: FastGossipingSchedule,
        alive_mask: Optional[np.ndarray],
        alive_nodes: np.ndarray,
    ) -> dict:
        ledger.begin_phase("phase2-random-walks")
        total_walks = 0
        total_walk_moves = 0
        for _ in range(schedule.rounds):
            pool = start_walks(
                graph,
                knowledge,
                schedule.walk_probability,
                schedule.walk_move_cap,
                rng,
                ledger,
                alive=alive_mask,
            )
            total_walks += pool.num_walks
            ledger.end_round()
            trace.record(ledger.rounds - 1, "phase2-random-walks", knowledge)

            # Walk forwarding steps: deliver incoming walks, then every node
            # holding walks forwards its oldest one.
            for _ in range(schedule.walk_steps):
                pool.deliver(knowledge)
                pool.forward_step(graph, rng, ledger, alive=alive_mask)
                ledger.end_round()
                trace.record(ledger.rounds - 1, "phase2-random-walks", knowledge)
            # Walks still in transit after the last forwarding step arrive now
            # and make their hosts active for the broadcast sub-phase.
            pool.deliver(knowledge)
            total_walk_moves += pool.total_moves

            # Broadcast sub-phase: nodes holding walks become active and push
            # for ~0.5 * log log n steps; receivers become active as well.
            active = np.zeros(graph.n, dtype=bool)
            hosts = pool.nodes_with_walks()
            if hosts.size:
                active[hosts] = True
            for _ in range(schedule.broadcast_steps):
                senders = np.flatnonzero(active)
                if alive_mask is not None and senders.size:
                    senders = senders[alive_mask[senders]]
                if senders.size == 0:
                    ledger.end_round()
                    continue
                destinations = graph.sample_neighbors(senders, rng)
                ok = destinations >= 0
                if alive_mask is not None:
                    ok &= np.where(destinations >= 0, alive_mask[np.clip(destinations, 0, None)], False)
                ledger.record_opens(senders)
                knowledge.apply_transmissions(senders[ok], destinations[ok])
                ledger.record_pushes(senders)
                active[destinations[ok]] = True
                ledger.end_round()
                trace.record(ledger.rounds - 1, "phase2-random-walks", knowledge)
            # All nodes become inactive at the end of the round.
        ledger.end_phase()
        return {"total_walks": total_walks, "total_walk_moves": total_walk_moves}

    # ------------------------------------------------------------------ #
    # Phase III — push–pull broadcast
    # ------------------------------------------------------------------ #
    def _phase_broadcast(
        self,
        graph: Adjacency,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        trace: SpreadingTrace,
        rng: np.random.Generator,
        schedule: FastGossipingSchedule,
        alive_mask: Optional[np.ndarray],
        alive_nodes: np.ndarray,
    ) -> bool:
        ledger.begin_phase("phase3-broadcast")
        tracker = CompletionTracker(knowledge, alive_nodes)
        completed = tracker.is_complete()
        steps = 0
        while not completed and steps < schedule.max_extra_rounds:
            channels = open_channels(graph, rng, participants=alive_nodes, alive=alive_mask)
            ledger.record_opens(alive_nodes)
            # One synchronous exchange: push and pull both read start-of-step
            # state inside the kernel, and saturated rows are filtered out of
            # the batch (bit-exact).
            touched, promoted = knowledge.apply_exchange(
                channels.callers,
                channels.targets,
                complete=tracker.complete_rows,
                complete_row=tracker.mask,
                deficit_mask=tracker.mask,
                deficits_out=tracker.deficits,
            )
            ledger.record_pushes(channels.callers)
            ledger.record_pulls(channels.targets)
            ledger.end_round()
            trace.record(ledger.rounds - 1, "phase3-broadcast", knowledge)
            steps += 1
            if knowledge.fused_deficits:
                # The swap-form kernel recounted changed rows in-kernel.
                tracker.refresh()
            else:
                # The incremental tracker recounts only the rows touched this
                # round, so completion is checked after every step.
                tracker.update(touched)
                tracker.mark_promoted(promoted)
            completed = tracker.is_complete()
        ledger.end_phase()
        return completed
