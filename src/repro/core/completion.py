"""Gossiping completion predicates.

Gossiping is *complete* when every node knows every original message.  Under
crash failures the sensible target (and the one the paper's robustness study
uses) is restricted to healthy nodes: a failed node's original message may be
lost and failed nodes do not need to learn anything, so completion means every
alive node knows the original message of every alive node.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.knowledge import WORD_BITS, KnowledgeMatrix

__all__ = ["alive_message_mask", "gossip_complete", "missing_pairs"]


def alive_message_mask(knowledge: KnowledgeMatrix, alive_nodes: np.ndarray) -> np.ndarray:
    """Packed bitset row with one bit set per alive node's original message."""
    mask = np.zeros(knowledge.words, dtype=np.uint64)
    alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
    relevant = alive_nodes[alive_nodes < knowledge.n_messages]
    if relevant.size:
        np.bitwise_or.at(
            mask,
            relevant // WORD_BITS,
            np.left_shift(np.uint64(1), (relevant % WORD_BITS).astype(np.uint64)),
        )
    return mask


def gossip_complete(
    knowledge: KnowledgeMatrix, alive_nodes: Optional[np.ndarray] = None
) -> bool:
    """Whether gossiping has completed.

    Parameters
    ----------
    knowledge:
        The current knowledge state.
    alive_nodes:
        Nodes considered healthy.  Defaults to all nodes, in which case the
        predicate is the plain "everyone knows everything" check.
    """
    if alive_nodes is None or alive_nodes.size == knowledge.n_nodes:
        return knowledge.is_complete()
    alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
    mask = alive_message_mask(knowledge, alive_nodes)
    rows = knowledge.data[alive_nodes]
    return bool(np.all((rows & mask) == mask))


def missing_pairs(
    knowledge: KnowledgeMatrix, alive_nodes: Optional[np.ndarray] = None
) -> int:
    """Number of (alive node, alive message) pairs still missing."""
    if alive_nodes is None:
        alive_nodes = np.arange(knowledge.n_nodes, dtype=np.int64)
    alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
    mask = alive_message_mask(knowledge, alive_nodes)
    rows = knowledge.data[alive_nodes]
    missing = np.bitwise_count(mask[None, :] & ~rows).sum()
    return int(missing)
