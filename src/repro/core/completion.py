"""Gossiping completion predicates.

Gossiping is *complete* when every node knows every original message.  Under
crash failures the sensible target (and the one the paper's robustness study
uses) is restricted to healthy nodes: a failed node's original message may be
lost and failed nodes do not need to learn anything, so completion means every
alive node knows the original message of every alive node.

Two forms are provided: the one-shot predicates (:func:`gossip_complete`,
:func:`missing_pairs`) that rescan the matrix, and the incremental
:class:`CompletionTracker` that protocols keep on the hot path.  The tracker
recounts only the receiver rows a round actually touched — fed with the
(possibly duplicated) receiver multiset the knowledge-storage batch kernels
return — and its per-row recount delegates to
:meth:`~repro.engine.knowledge.KnowledgeStorage.count_missing`, so every
storage layout answers it natively (dense rows dispatch through the active
:mod:`repro.engine.backends` backend, frontier rows are counted from their
active word set, paged/sparse layouts count block-locally) without this
module ever touching raw row storage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.knowledge import WORD_BITS, KnowledgeStorage

__all__ = [
    "CompletionTracker",
    "alive_message_mask",
    "gossip_complete",
    "missing_pairs",
]


def alive_message_mask(knowledge: KnowledgeStorage, alive_nodes: np.ndarray) -> np.ndarray:
    """Packed bitset row with one bit set per alive node's original message."""
    mask = np.zeros(knowledge.words, dtype=np.uint64)
    alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
    relevant = alive_nodes[alive_nodes < knowledge.n_messages]
    if relevant.size:
        np.bitwise_or.at(
            mask,
            relevant // WORD_BITS,
            np.left_shift(np.uint64(1), (relevant % WORD_BITS).astype(np.uint64)),
        )
    return mask


def gossip_complete(
    knowledge: KnowledgeStorage, alive_nodes: Optional[np.ndarray] = None
) -> bool:
    """Whether gossiping has completed.

    Parameters
    ----------
    knowledge:
        The current knowledge state.
    alive_nodes:
        Nodes considered healthy.  Defaults to all nodes, in which case the
        predicate is the plain "everyone knows everything" check.
    """
    if alive_nodes is None or alive_nodes.size == knowledge.n_nodes:
        return knowledge.is_complete()
    alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
    mask = alive_message_mask(knowledge, alive_nodes)
    return not knowledge.count_missing(mask, alive_nodes).any()


class CompletionTracker:
    """Incrementally maintained gossiping-completion predicate.

    ``gossip_complete`` rescans the entire ``n x words`` matrix, which makes
    an every-round completion check ``O(n^2 / 64)``.  This tracker instead
    maintains the per-node *deficit* — the number of required messages a node
    does not yet know — and only recounts the rows actually touched during a
    round: the receiver multiset returned by
    :meth:`~repro.engine.knowledge.KnowledgeMatrix.apply_transmissions` /
    :meth:`~repro.engine.knowledge.KnowledgeMatrix.apply_exchange` (which may
    be unsorted and contain duplicates — :meth:`update` deduplicates with a
    boolean scatter).  The per-round cost is therefore
    ``O(receivers * words)`` and the verdict itself is ``O(1)``.

    The tracker answers exactly the same question as
    ``gossip_complete(knowledge, alive_nodes)``: with ``alive_nodes`` given,
    completion means every alive node knows every alive node's original
    message; without it, every node must know every message.

    Parameters
    ----------
    knowledge:
        The knowledge state to track.  The tracker reads the live matrix, so
        it must be told about every mutation via :meth:`update`.
    alive_nodes:
        Optional array of healthy nodes (the robustness setting).
    """

    __slots__ = ("knowledge", "mask", "deficits", "incomplete", "_complete", "_relevant")

    def __init__(
        self, knowledge: KnowledgeStorage, alive_nodes: Optional[np.ndarray] = None
    ) -> None:
        self.knowledge = knowledge
        if alive_nodes is None or alive_nodes.size == knowledge.n_nodes:
            self.mask = knowledge.full_row_mask()
            self._relevant = None
            deficits = self._recount(np.arange(knowledge.n_nodes, dtype=np.int64))
            complete = deficits == 0
        else:
            alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
            self.mask = alive_message_mask(knowledge, alive_nodes)
            self._relevant = np.zeros(knowledge.n_nodes, dtype=bool)
            self._relevant[alive_nodes] = True
            deficits = np.zeros(knowledge.n_nodes, dtype=np.int64)
            deficits[alive_nodes] = self._recount(alive_nodes)
            # Only relevant (alive) nodes count as saturated: transmissions
            # touching irrelevant endpoints are never short-circuited, so the
            # filter stays exact even for them.
            complete = np.zeros(knowledge.n_nodes, dtype=bool)
            complete[alive_nodes] = deficits[alive_nodes] == 0
        self.deficits = deficits
        self._complete = complete
        # Irrelevant (dead) rows carry a zero deficit, so this counts exactly
        # the incomplete relevant nodes in both branches.
        self.incomplete = int(np.count_nonzero(deficits))

    def update(self, touched: np.ndarray) -> None:
        """Recount the deficits of the rows mutated since the last update.

        ``touched`` may contain duplicates; they are deduplicated here with a
        cheap boolean scatter (no sort).
        """
        touched = np.asarray(touched, dtype=np.int64)
        if touched.size == 0:
            return
        # Deduplicate and drop rows that were already complete (knowledge
        # only grows, so a zero deficit can never come back) or irrelevant.
        dirty = np.zeros(self.knowledge.n_nodes, dtype=bool)
        dirty[touched] = True
        dirty &= self.deficits > 0
        rows = np.flatnonzero(dirty)
        if rows.size == 0:
            return
        fresh = self._recount(rows)
        self.deficits[rows] = fresh
        done = fresh == 0
        if done.any():
            self._complete[rows[done]] = True
            # Irrelevant rows always carry a zero deficit, so this scan
            # counts exactly the incomplete relevant nodes.
            self.incomplete = int(np.count_nonzero(self.deficits))

    def _recount(self, rows: np.ndarray) -> np.ndarray:
        """Missing-bit counts (``popcount(mask & ~row)``) for the given rows.

        Delegates to the storage layout's native counter: dense layouts run
        the fused mask-and-popcount backend kernel (sharded on the threaded
        backend), frontier rows count from their active word set, and the
        paged/sparse layouts count block-locally without materializing rows.
        All paths are pinned bit-identical to the plain masked scan.
        """
        return self.knowledge.count_missing(self.mask, rows)

    @property
    def complete_rows(self) -> np.ndarray:
        """Boolean per-node mask of saturated rows (live view, do not mutate).

        Passed to :meth:`~repro.engine.knowledge.KnowledgeMatrix.apply_exchange`
        as its ``complete`` argument so the kernel can drop no-op
        transmissions and short-circuit saturating ones.  Irrelevant (dead)
        nodes are never marked, keeping the filter exact for them.
        """
        return self._complete

    def mark_promoted(self, promoted: np.ndarray) -> None:
        """Record rows the kernel saturated directly (set to ``mask``).

        The row data was already written by ``apply_exchange``; this only
        updates the tracker's bookkeeping.  ``promoted`` rows are guaranteed
        to have been incomplete (saturated receivers are dropped from the
        batch before promotion).
        """
        if promoted.size == 0:
            return
        self.deficits[promoted] = 0
        self._complete[promoted] = True
        self.incomplete -= int(promoted.size)

    def refresh(self) -> None:
        """Adopt deficits written in-place by a fused-recount exchange kernel.

        The swap-form C kernels can compute ``popcount(mask & ~row)`` for each
        row they rewrite while the row is still hot in cache, storing the
        result straight into :attr:`deficits` (rows the kernel did not touch
        keep their previous — still correct — deficit).  After such a round
        the driver calls :meth:`refresh` instead of :meth:`update` /
        :meth:`mark_promoted`: no rows are recounted here, only the derived
        complete mask and incomplete counter are rebuilt from the deficits.
        """
        if self._relevant is not None:
            # The kernel counts every row it rewrites, including irrelevant
            # (dead) ones; clamp those back to zero so the nonzero count below
            # keeps meaning "incomplete relevant nodes".
            self.deficits[~self._relevant] = 0
        done = (self.deficits == 0) & ~self._complete
        if self._relevant is not None:
            done &= self._relevant
        if done.any():
            self._complete[done] = True
        self.incomplete = int(np.count_nonzero(self.deficits))

    def is_complete(self) -> bool:
        """True when every relevant node knows every relevant message."""
        return self.incomplete == 0

    def missing_pairs(self) -> int:
        """Number of (relevant node, relevant message) pairs still missing."""
        return int(self.deficits.sum())


def missing_pairs(
    knowledge: KnowledgeStorage, alive_nodes: Optional[np.ndarray] = None
) -> int:
    """Number of (alive node, alive message) pairs still missing."""
    if alive_nodes is None:
        alive_nodes = np.arange(knowledge.n_nodes, dtype=np.int64)
    alive_nodes = np.asarray(alive_nodes, dtype=np.int64)
    mask = alive_message_mask(knowledge, alive_nodes)
    return int(knowledge.count_missing(mask, alive_nodes).sum())
