"""Shared machinery of the experiment harness.

Every experiment (one per paper table/figure plus the extensions) is expressed
as a sweep over (configuration, repetition) pairs, declared as a
:class:`~repro.experiments.scenarios.ScenarioSpec` in its module and executed
by :func:`~repro.experiments.scenarios.run_scenario`.  This module provides
the spec-independent building blocks:

* a protocol factory mapping protocol names to configured protocol objects,
* the picklable task functions executed for each pair (so sweeps can run on a
  process pool),
* :func:`aggregate_records`, the default group-and-average aggregation
  (re-exported from :mod:`repro.analysis.statistics`, where it is shared
  with the store's SQLite query index), and
* :class:`ExperimentResult`, the uniform result container with helpers for
  rendering and persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.statistics import aggregate_records
from ..analysis.sweep import SweepTask, expand_grid, run_sweep, stable_key_hash
from ..core.fast_gossiping import FastGossiping
from ..core.memory_gossiping import MemoryGossiping
from ..core.parameters import (
    FastGossipingParameters,
    MemoryGossipingParameters,
    PushPullParameters,
    tuned_fast_gossiping,
    tuned_memory_gossiping,
)
from ..core.push_pull import PushPullGossip
from ..core.push_sum import PushSumGossip, PushSumParameters
from ..engine import layouts
from ..engine.event_clock import sample_churn_plan
from ..engine.failures import NO_FAILURES, sample_uniform_failures
from ..engine.metrics import MessageAccounting
from ..engine.rng import derive_seed
from ..graphs.generators import GraphSpec, make_graph
from ..io.results import save_csv, save_json
from ..io.tables import format_records

__all__ = [
    "PROTOCOL_NAMES",
    "ALL_PROTOCOL_NAMES",
    "make_protocol",
    "gossip_task",
    "robustness_task",
    "push_sum_task",
    "churn_task",
    "spread_monotone",
    "ExperimentResult",
    "aggregate_records",
    "run_gossip_sweep",
]

#: Names of the gossiping protocols compared in the paper's Figure 1.
PROTOCOL_NAMES = ("push-pull", "fast-gossiping", "memory")

#: All protocols :func:`make_protocol` can build (Figure 1 set plus the
#: push-sum aggregation workload).
ALL_PROTOCOL_NAMES = PROTOCOL_NAMES + ("push-sum",)


def make_protocol(
    name: str,
    *,
    protocol_options: Optional[Mapping[str, Any]] = None,
):
    """Instantiate a gossiping protocol by name.

    Parameters
    ----------
    name:
        ``"push-pull"``, ``"fast-gossiping"``, ``"memory"`` or
        ``"push-sum"``.
    protocol_options:
        Keyword overrides for the protocol's parameter dataclass
        (e.g. ``{"walk_probability_factor": 2.0}`` for fast-gossiping,
        ``{"num_trees": 3, "gather_only": True, "leader": 0}`` for memory,
        or ``{"clock": "event"}`` for push-pull / push-sum).
    """
    options = dict(protocol_options or {})
    if name == "push-pull":
        params = PushPullParameters(**options) if options else PushPullParameters()
        return PushPullGossip(params)
    if name == "push-sum":
        params = PushSumParameters(**options) if options else PushSumParameters()
        return PushSumGossip(params)
    if name == "fast-gossiping":
        params = tuned_fast_gossiping()
        if options:
            params = params.with_overrides(**options)
        return FastGossiping(params)
    if name == "memory":
        leader = options.pop("leader", None)
        gather_only = bool(options.pop("gather_only", False))
        elect_leader = bool(options.pop("elect_leader", False))
        params = tuned_memory_gossiping()
        if options:
            params = params.with_overrides(**options)
        return MemoryGossiping(
            params, leader=leader, elect_leader=elect_leader, gather_only=gather_only
        )
    raise ValueError(
        f"unknown protocol {name!r}; expected one of {ALL_PROTOCOL_NAMES}"
    )


# --------------------------------------------------------------------------- #
# Task functions (module level so they are picklable for process pools)
# --------------------------------------------------------------------------- #
def gossip_task(task: SweepTask) -> Dict[str, Any]:
    """Run one gossiping protocol once; used by the size/density sweeps.

    Expected task params: ``graph_spec`` (dict), ``protocol`` (name),
    optional ``protocol_options`` (dict) and optional ``knowledge_layout``
    (a :data:`repro.engine.layouts.LAYOUTS` name forced for the run via
    :func:`repro.engine.layouts.use`; trajectories are layout-invariant, so
    this only affects memory/speed — used by the large-n scale scenario).
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    graph = make_graph(spec, rng=task.seed)
    protocol = make_protocol(
        params["protocol"], protocol_options=params.get("protocol_options")
    )
    layout = params.get("knowledge_layout")
    if layout is not None:
        with layouts.use(layout):
            result = protocol.run(graph, rng=task.seed + 1)
    else:
        result = protocol.run(graph, rng=task.seed + 1)
    record = {
        "n": spec.n,
        "graph": spec.describe(),
        "mean_degree": graph.mean_degree(),
        "protocol": params["protocol"],
        "completed": result.completed,
        "rounds": result.rounds,
        "messages_per_node": result.messages_per_node(MessageAccounting.PACKETS),
        "opens_per_node": result.messages_per_node(MessageAccounting.OPENS),
        "strict_cost_per_node": result.messages_per_node(
            MessageAccounting.OPENS_AND_PACKETS
        ),
    }
    if layout is not None:
        record["knowledge_layout"] = layout
        record["storage_class"] = type(result.knowledge).__name__
        record["storage_mb"] = round(result.knowledge.storage_nbytes() / 1e6, 1)
    return record


def robustness_task(task: SweepTask) -> Dict[str, Any]:
    """Run the memory model with crash failures before Phase II.

    Expected task params: ``graph_spec`` (dict), ``failed`` (int, number of
    failed nodes), ``num_trees`` (int), optional ``leader`` (int).
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    graph = make_graph(spec, rng=task.seed)
    leader = int(params.get("leader", 0))
    failed_count = int(params["failed"])
    protocol = make_protocol(
        "memory",
        protocol_options={
            "num_trees": int(params.get("num_trees", 3)),
            "leader": leader,
            "gather_only": True,
        },
    )
    failures = (
        sample_uniform_failures(
            spec.n, failed_count, rng=task.seed + 7, protect=[leader]
        )
        if failed_count
        else NO_FAILURES
    )
    result = protocol.run(graph, rng=task.seed + 1, failures=failures)
    lost = int(result.extras["lost_messages"])
    return {
        "n": spec.n,
        "failed": failed_count,
        "num_trees": int(params.get("num_trees", 3)),
        "additional_lost": lost,
        "loss_ratio": (lost / failed_count) if failed_count else 0.0,
        "messages_per_node": result.messages_per_node(MessageAccounting.PACKETS),
        "rounds": result.rounds,
    }


def spread_monotone(spread: Sequence[float], tolerance: float = 1e-12) -> bool:
    """True when the spread series never increases beyond float rounding.

    Push-sum's exact-arithmetic guarantee; the tolerance absorbs the
    ``~1e-16``-scale wobble double rounding can introduce per step.
    """
    return all(b <= a + tolerance for a, b in zip(spread, spread[1:]))


def push_sum_task(task: SweepTask) -> Dict[str, Any]:
    """Run push-sum averaging once under a configured clock.

    Expected task params: ``graph_spec`` (dict), ``clock`` (``"sync"`` /
    ``"event"``), ``base_seed`` and optional ``tolerance``.  Like
    ``scale_task``, the simulation seed derives from the size alone (not the
    configuration key, which includes the clock), so both clocks run the
    same graph and their convergence behaviour is directly comparable.
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    seed = derive_seed(
        params["base_seed"], stable_key_hash(("pushsum", spec.n)), task.repetition
    )
    graph = make_graph(spec, rng=seed)
    protocol = PushSumGossip(
        PushSumParameters(
            clock=params["clock"],
            tolerance=float(params.get("tolerance", 1e-8)),
        )
    )
    result = protocol.run(graph, rng=seed + 1)
    extras = result.extras
    return {
        "n": spec.n,
        "clock": params["clock"],
        "converged": result.completed,
        "rounds": result.rounds,
        "events": int(extras["events"]),
        "sim_time": float(extras["sim_time"]),
        "messages_per_node": result.messages_per_node(MessageAccounting.PUSHES),
        "mass_error": float(extras["mass_error"]),
        "spread_final": float(extras["spread"]),
        "variance_initial": float(extras["variance_initial"]),
        "variance_final": float(extras["variance_final"]),
        "estimate_error": float(extras["estimate_error"]),
        "spread_monotone": spread_monotone(extras["series"]["spread"]),
    }


def churn_task(task: SweepTask) -> Dict[str, Any]:
    """Run event-clock push-pull with seeded join/leave churn.

    Expected task params: ``graph_spec`` (dict), ``churn_fraction`` (float),
    ``rejoin_fraction`` (float) and optional ``knowledge_layout``.
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    graph = make_graph(spec, rng=task.seed)
    protocol = PushPullGossip(PushPullParameters(clock="event"))
    leavers = int(round(float(params["churn_fraction"]) * spec.n))
    plan = None
    if leavers:
        # Churn lands within the first quarter of the wakeup budget so runs
        # have time to finish after the membership settles.
        plan = sample_churn_plan(
            spec.n,
            leavers=leavers,
            rng=task.seed + 7,
            horizon=protocol.params.max_events(spec.n) // 4,
            rejoin_fraction=float(params.get("rejoin_fraction", 0.5)),
        )
    layout = params.get("knowledge_layout")
    if layout is not None:
        with layouts.use(layout):
            result = protocol.run(graph, rng=task.seed + 1, churn=plan)
    else:
        result = protocol.run(graph, rng=task.seed + 1, churn=plan)
    extras = result.extras
    return {
        "n": spec.n,
        "churn_fraction": float(params["churn_fraction"]),
        "churn_ops": int(extras.get("churn_ops", 0)),
        "survivors": int(extras["alive_nodes"]),
        "completed": result.completed,
        "rounds": result.rounds,
        "events": int(extras["events"]),
        "sim_time": float(extras["sim_time"]),
        "messages_per_node": result.messages_per_node(MessageAccounting.PACKETS),
        "opens_per_node": result.messages_per_node(MessageAccounting.OPENS),
    }


# --------------------------------------------------------------------------- #
# Result container and aggregation
# --------------------------------------------------------------------------- #
@dataclass
class ExperimentResult:
    """Uniform container for experiment outputs.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"figure1"``).
    description:
        One-line description of what is reproduced.
    rows:
        Aggregated rows (one per plotted point / table row).
    raw_records:
        Per-run records before aggregation.
    metadata:
        Sweep settings (sizes, repetitions, seed, ...).
    """

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    raw_records: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_table(self, columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
        """Render the aggregated rows as a text table."""
        if not self.rows:
            return f"{self.name}: no rows"
        if columns is None:
            columns = list(self.rows[0].keys())
        return format_records(self.rows, columns, title=title or self.description)

    def save(self, directory: Union[str, Path]) -> Dict[str, Path]:
        """Persist rows and raw records under ``directory``."""
        directory = Path(directory)
        paths = {
            "rows_json": save_json(self.rows, directory / f"{self.name}_rows.json"),
            "rows_csv": save_csv(self.rows, directory / f"{self.name}_rows.csv"),
            "metadata": save_json(self.metadata, directory / f"{self.name}_metadata.json"),
        }
        if self.raw_records:
            paths["raw_csv"] = save_csv(self.raw_records, directory / f"{self.name}_raw.csv")
        return paths


def run_gossip_sweep(
    configurations: Sequence[Tuple[Any, Dict[str, Any]]],
    *,
    repetitions: int,
    seed: Optional[int],
    n_jobs: int = 1,
    task=gossip_task,
) -> List[Dict[str, Any]]:
    """Expand configurations into tasks and execute them.

    Legacy convenience shim over :func:`expand_grid` + :func:`run_sweep`;
    scenarios go through :func:`repro.experiments.scenarios.run_scenario`,
    which also supports progress reporting and the result store.
    """
    tasks = expand_grid(configurations, repetitions, seed)
    return run_sweep(task, tasks, n_jobs=n_jobs)
