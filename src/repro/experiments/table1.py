"""Experiment E6 — Table 1: the constants used in the simulations.

Table 1 of the paper lists the phase-length constants of Algorithms 1 and 2 as
functions of ``n`` ("The actual constants used in our simulation").  The
reproduction resolves exactly those formulas for a list of concrete sizes so
the resulting schedules can be inspected and compared with the paper's
formulas, and verifies the tuned presets round-trip through the parameter
dataclasses.

Table 1 is deterministic (no sweep, no randomness), so its scenario spec uses
a ``run_override`` rather than the sweep engine; the "config" is simply the
list of sizes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.parameters import table1_rows, tuned_fast_gossiping, tuned_memory_gossiping
from .runner import ExperimentResult
from .scenarios import ScenarioSpec, register

__all__ = ["run_table1", "TABLE1_COLUMNS", "TABLE1"]

TABLE1_COLUMNS = (
    "n",
    "algorithm",
    "phase",
    "limit",
    "value",
)

#: Human-readable layout mirroring Table 1 of the paper.
_TABLE1_LAYOUT = {
    "algorithm1_fast_gossiping": [
        ("I", "number of steps", "phase1_distribution_steps"),
        ("II", "number of rounds", "phase2_rounds"),
        ("II", "random walk probability", "phase2_walk_probability"),
        ("II", "number of random walk steps", "phase2_walk_steps"),
        ("II", "number of broadcast steps", "phase2_broadcast_steps"),
        ("III", "finish: push-pull until informed", None),
    ],
    "algorithm2_memory_model": [
        ("I", "first loop, number of steps (multiple of 4)", "phase1_push_steps"),
        ("I", "second loop, number of long-steps", "phase1_pull_longsteps"),
        ("II", "number of steps (corresponds to Phase I)", None),
        ("III", "number of push steps", "phase3_broadcast_steps"),
    ],
}


def run_table1(sizes: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Reproduce Table 1: resolved schedule constants for concrete sizes."""
    sizes = list(sizes) if sizes is not None else [1024, 4096, 16384, 65536, 10**6]
    rows: List[Dict[str, object]] = []
    for n in sizes:
        resolved = table1_rows(int(n))
        for algorithm, layout in _TABLE1_LAYOUT.items():
            data = resolved[algorithm]
            for phase, limit, key in layout:
                rows.append(
                    {
                        "n": n,
                        "algorithm": algorithm,
                        "phase": phase,
                        "limit": limit,
                        "value": data.get(key) if key else "(runs until complete / replay)",
                    }
                )
    return ExperimentResult(
        name="table1",
        description="Table 1: simulation constants of Algorithms 1 and 2 resolved per n",
        rows=rows,
        metadata={
            "sizes": sizes,
            "fast_gossiping_defaults": tuned_fast_gossiping().__dict__,
            "memory_defaults": tuned_memory_gossiping().__dict__,
        },
    )


TABLE1 = register(
    ScenarioSpec(
        name="table1",
        result_name="table1",
        description="Table 1: simulation constants of Algorithms 1 and 2 resolved per n",
        smoke_config=lambda seed: [1024, 65536],
        columns=TABLE1_COLUMNS,
        run_override=run_table1,
        legacy_entry="run_table1",
    )
)
