"""Experiment E12 (extension) — Erdős–Rényi vs configuration-model substrates.

The paper proves its first result for the configuration model and its second
for Erdős–Rényi graphs, and notes (Section 1.3) that both results hold for
both random-graph models with the same proof techniques.  This extension makes
the claim empirical: it runs every gossiping protocol on an Erdős–Rényi graph
and on a random-regular (configuration-model) graph of the *same* expected
degree and size, and compares the per-node message cost — the two families
should be indistinguishable for every protocol.

Declared as a scenario spec; ``run_graph_model_comparison`` is a thin wrapper.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..graphs.generators import GraphSpec
from .config import SizeSweepConfig
from .runner import ExperimentResult, gossip_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_graph_model_comparison", "GRAPH_MODEL_COLUMNS", "GRAPH_MODELS"]

GRAPH_MODEL_COLUMNS = (
    "n",
    "model",
    "protocol",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "repetitions",
)


def _default_config() -> SizeSweepConfig:
    return SizeSweepConfig(sizes=(512, 1024), repetitions=3)


def _configurations(config: SizeSweepConfig) -> List[Tuple[Tuple[int, str, str], Dict]]:
    configurations: List[Tuple[Tuple[int, str, str], Dict]] = []
    for n in config.sizes:
        degree = int(round(math.log2(n) ** config.density_exponent))
        if (degree * n) % 2:
            degree += 1
        specs = {
            "erdos_renyi": GraphSpec(
                "erdos_renyi",
                n,
                {"expected_degree": float(degree), "require_connected": True},
            ),
            "configuration_model": GraphSpec(
                "random_regular", n, {"d": degree, "require_connected": True}
            ),
        }
        for model, spec in specs.items():
            for protocol in config.protocols:
                options: Dict[str, object] = {"leader": 0} if protocol == "memory" else {}
                configurations.append(
                    (
                        (n, model, protocol),
                        {
                            "graph_spec": spec.as_dict(),
                            "protocol": protocol,
                            "protocol_options": options,
                        },
                    )
                )
    return configurations


def _prepare_records(records: List[Dict[str, Any]], config: SizeSweepConfig) -> None:
    for record in records:
        record["model"] = record["key"][1]


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: SizeSweepConfig,
) -> Dict[str, Any]:
    # Per (n, protocol): relative gap between the two graph models.
    gaps: List[Dict[str, object]] = []
    for n in config.sizes:
        for protocol in config.protocols:
            costs = {
                row["model"]: row["messages_per_node"]
                for row in rows
                if row["n"] == n and row["protocol"] == protocol
            }
            if len(costs) == 2 and min(costs.values()) > 0:
                gaps.append(
                    {
                        "n": n,
                        "protocol": protocol,
                        "relative_gap": abs(costs["erdos_renyi"] - costs["configuration_model"])
                        / min(costs.values()),
                    }
                )
    return {"relative_gaps": gaps}


GRAPH_MODELS = register(
    ScenarioSpec(
        name="graph-models",
        result_name="graph_models",
        description=(
            "Graph-model comparison (extension): per-node gossiping cost on "
            "Erdős–Rényi vs configuration-model (random-regular) graphs of the "
            "same expected degree"
        ),
        task=gossip_task,
        grid=_configurations,
        default_config=_default_config,
        cli_config=lambda seed: SizeSweepConfig(
            sizes=(256, 512), repetitions=2, seed=20150533 if seed is None else seed
        ),
        smoke_config=lambda seed: SizeSweepConfig(
            sizes=(128,), repetitions=1, seed=20150533 if seed is None else seed
        ),
        group_by=("n", "model", "protocol"),
        metrics=("messages_per_node", "rounds"),
        prepare_records=_prepare_records,
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=GRAPH_MODEL_COLUMNS,
        render={"x": "n", "y": "messages_per_node", "group_by": "model", "log_x": True},
        legacy_entry="run_graph_model_comparison",
    )
)


def run_graph_model_comparison(
    config: Optional[SizeSweepConfig] = None,
) -> ExperimentResult:
    """Compare gossiping costs on Erdős–Rényi vs configuration-model graphs."""
    return run_scenario(GRAPH_MODELS, config=config or _default_config())
