"""Experiment E12 (extension) — Erdős–Rényi vs configuration-model substrates.

The paper proves its first result for the configuration model and its second
for Erdős–Rényi graphs, and notes (Section 1.3) that both results hold for
both random-graph models with the same proof techniques.  This extension makes
the claim empirical: it runs every gossiping protocol on an Erdős–Rényi graph
and on a random-regular (configuration-model) graph of the *same* expected
degree and size, and compares the per-node message cost — the two families
should be indistinguishable for every protocol.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..graphs.generators import GraphSpec
from .config import SizeSweepConfig
from .runner import ExperimentResult, aggregate_records, run_gossip_sweep

__all__ = ["run_graph_model_comparison", "GRAPH_MODEL_COLUMNS"]

GRAPH_MODEL_COLUMNS = (
    "n",
    "model",
    "protocol",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "repetitions",
)


def _configurations(config: SizeSweepConfig) -> List[Tuple[Tuple[int, str, str], Dict]]:
    configurations: List[Tuple[Tuple[int, str, str], Dict]] = []
    for n in config.sizes:
        degree = int(round(math.log2(n) ** config.density_exponent))
        if (degree * n) % 2:
            degree += 1
        specs = {
            "erdos_renyi": GraphSpec(
                "erdos_renyi",
                n,
                {"expected_degree": float(degree), "require_connected": True},
            ),
            "configuration_model": GraphSpec(
                "random_regular", n, {"d": degree, "require_connected": True}
            ),
        }
        for model, spec in specs.items():
            for protocol in config.protocols:
                options: Dict[str, object] = {"leader": 0} if protocol == "memory" else {}
                configurations.append(
                    (
                        (n, model, protocol),
                        {
                            "graph_spec": spec.as_dict(),
                            "protocol": protocol,
                            "protocol_options": options,
                        },
                    )
                )
    return configurations


def run_graph_model_comparison(
    config: Optional[SizeSweepConfig] = None,
) -> ExperimentResult:
    """Compare gossiping costs on Erdős–Rényi vs configuration-model graphs."""
    config = config or SizeSweepConfig(sizes=(512, 1024), repetitions=3)
    records = run_gossip_sweep(
        _configurations(config),
        repetitions=config.repetitions,
        seed=config.seed,
        n_jobs=config.n_jobs,
    )
    for record in records:
        record["model"] = record["key"][1]
    rows = aggregate_records(
        records,
        group_by=("n", "model", "protocol"),
        metrics=("messages_per_node", "rounds"),
    )

    # Per (n, protocol): relative gap between the two graph models.
    gaps: List[Dict[str, object]] = []
    for n in config.sizes:
        for protocol in config.protocols:
            costs = {
                row["model"]: row["messages_per_node"]
                for row in rows
                if row["n"] == n and row["protocol"] == protocol
            }
            if len(costs) == 2 and min(costs.values()) > 0:
                gaps.append(
                    {
                        "n": n,
                        "protocol": protocol,
                        "relative_gap": abs(costs["erdos_renyi"] - costs["configuration_model"])
                        / min(costs.values()),
                    }
                )
    return ExperimentResult(
        name="graph_models",
        description=(
            "Graph-model comparison (extension): per-node gossiping cost on "
            "Erdős–Rényi vs configuration-model (random-regular) graphs of the "
            "same expected degree"
        ),
        rows=rows,
        raw_records=records,
        metadata={
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
            "relative_gaps": gaps,
        },
    )
