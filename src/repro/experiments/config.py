"""Configurations of the reproduction experiments.

The paper simulates graphs of up to a million nodes on 64-core, 0.5–1 TB
machines; the default configurations here are scaled down so that the full
suite finishes on a laptop in minutes while preserving the growth trends over
a decade of sizes.  Every configuration dataclass has two constructors:

``quick()``
    The default used by the test-suite and the pytest benchmarks.

``paper_scale()``
    Larger sizes closer to the paper's ranges, for users with more time and
    memory (still bounded by the O(n²/8) knowledge matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ChurnConfig",
    "PushSumConfig",
    "ScaleConfig",
    "SizeSweepConfig",
    "RobustnessConfig",
    "RobustnessDetailConfig",
    "DensitySweepConfig",
    "BroadcastAblationConfig",
    "ParameterAblationConfig",
    "LeaderElectionConfig",
]


@dataclass(frozen=True)
class SizeSweepConfig:
    """Configuration of the Figure 1 / Figure 4 size sweeps.

    Attributes
    ----------
    sizes:
        Graph sizes (the paper sweeps 10^3 … 10^6; we default to powers of two
        spanning roughly a decade).
    repetitions:
        Independent runs per (size, protocol) pair.
    seed:
        Base seed; all runs derive their seeds deterministically from it.
    protocols:
        Protocols included in the sweep.
    density_exponent:
        The sweep uses ``G(n, log^density_exponent(n) / n)``; the paper uses 2.
    n_jobs:
        Worker processes for the sweep.
    """

    sizes: Tuple[int, ...] = (256, 512, 1024, 2048, 4096)
    repetitions: int = 3
    seed: Optional[int] = 20150525
    protocols: Tuple[str, ...] = ("push-pull", "fast-gossiping", "memory")
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "SizeSweepConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "SizeSweepConfig":
        """Larger sizes closer to the paper's range (slower)."""
        return cls(sizes=(1024, 2048, 4096, 8192, 16384, 32768), repetitions=5)


@dataclass(frozen=True)
class ScaleConfig:
    """Configuration of the large-n storage-layout scale scenario.

    Attributes
    ----------
    sizes:
        Graph sizes; the point of the scenario is sizes past the dense
        comfort zone, where the paged/sparse layouts earn their keep.
    layouts:
        Knowledge-storage layouts compared per size
        (:data:`repro.engine.layouts.LAYOUTS` names).
    repetitions:
        Independent runs per (size, layout) pair.
    seed:
        Base seed; all runs derive their seeds deterministically from it.
    protocol:
        The gossiping protocol to scale (push-pull by default — the one
        whose cost the paper's Figure 1 anchors).
    density_exponent:
        The sweep uses ``G(n, log^density_exponent(n) / n)``.
    n_jobs:
        Worker processes for the sweep (keep at 1 for honest per-run
        memory readings).
    """

    sizes: Tuple[int, ...] = (4096, 16384)
    layouts: Tuple[str, ...] = ("dense", "paged", "sparse")
    repetitions: int = 1
    seed: Optional[int] = 20150525
    protocol: str = "push-pull"
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "ScaleConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "ScaleConfig":
        """The n >= 100k regime the layouts exist for (slow, memory-heavy)."""
        return cls(sizes=(50_000, 100_000), layouts=("paged", "sparse"))


@dataclass(frozen=True)
class PushSumConfig:
    """Configuration of the push-sum averaging scenario.

    Attributes
    ----------
    sizes:
        Graph sizes of the sweep.
    clocks:
        Execution clocks compared per size
        (:data:`repro.core.protocol.CLOCKS` names).  Seeds derive from the
        size alone, so both clocks run on the same graph.
    tolerance:
        Convergence threshold on the estimate spread.
    repetitions:
        Independent runs per (size, clock) pair.
    seed:
        Base seed; all runs derive their seeds deterministically from it.
    density_exponent:
        The sweep uses ``G(n, log^density_exponent(n) / n)``.
    n_jobs:
        Worker processes for the sweep.
    """

    sizes: Tuple[int, ...] = (256, 512, 1024)
    clocks: Tuple[str, ...] = ("sync", "event")
    tolerance: float = 1e-8
    repetitions: int = 3
    seed: Optional[int] = 20150532
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "PushSumConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "PushSumConfig":
        """Larger sizes (slower)."""
        return cls(sizes=(4096, 16384), repetitions=5)


@dataclass(frozen=True)
class ChurnConfig:
    """Configuration of the node-churn scenario (event-clock push-pull).

    Attributes
    ----------
    sizes:
        Graph sizes of the sweep.
    churn_fractions:
        Fractions of the nodes that leave mid-run (a ``rejoin_fraction``
        share of them returns, keeping their knowledge).
    rejoin_fraction:
        Probability that a leaving node rejoins later.
    repetitions:
        Independent runs per (size, fraction) pair.
    seed:
        Base seed; all runs derive their seeds deterministically from it.
    density_exponent:
        The sweep uses ``G(n, log^density_exponent(n) / n)``.
    n_jobs:
        Worker processes for the sweep.
    """

    sizes: Tuple[int, ...] = (256, 512)
    churn_fractions: Tuple[float, ...] = (0.0, 0.05, 0.15)
    rejoin_fraction: float = 0.5
    repetitions: int = 3
    seed: Optional[int] = 20150533
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "ChurnConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "ChurnConfig":
        """Larger sizes (slower)."""
        return cls(sizes=(2048, 8192), repetitions=5)


@dataclass(frozen=True)
class RobustnessConfig:
    """Configuration of the Figure 2 / Figure 3 robustness sweeps.

    Attributes
    ----------
    size:
        Graph size (the paper uses 10^6 for Figure 2 and 10^5 / 5*10^5 for
        Figure 3).
    failed_fractions:
        Failed-node counts expressed as fractions of ``size``.
    num_trees:
        Independently built communication trees (3 in the paper).
    repetitions:
        Runs per failure count.
    """

    size: int = 2048
    failed_fractions: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
    num_trees: int = 3
    repetitions: int = 3
    seed: Optional[int] = 20150526
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls, size: int = 2048) -> "RobustnessConfig":
        """Laptop-scale default configuration."""
        return cls(size=size)

    @classmethod
    def paper_scale(cls, size: int = 16384) -> "RobustnessConfig":
        """Larger graph (slower)."""
        return cls(size=size, repetitions=5)

    def failed_counts(self) -> List[int]:
        """Absolute failed-node counts derived from the fractions."""
        return [int(round(self.size * fraction)) for fraction in self.failed_fractions]


@dataclass(frozen=True)
class RobustnessDetailConfig:
    """Configuration of the Figure 5 threshold-exceedance study.

    Attributes
    ----------
    sizes:
        Graph sizes (the paper uses 10^5 and 5*10^5).
    thresholds:
        Additional-loss thresholds T; the paper reports T in {0, 10, 100}.
    failed_fractions:
        Failure counts as fractions of each size.
    repetitions:
        Runs per (size, failure count); the paper uses at least 5.
    """

    sizes: Tuple[int, ...] = (1024, 2048)
    thresholds: Tuple[int, ...] = (0, 10, 100)
    failed_fractions: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
    num_trees: int = 3
    repetitions: int = 5
    seed: Optional[int] = 20150527
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "RobustnessDetailConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "RobustnessDetailConfig":
        """Larger sizes (slower)."""
        return cls(sizes=(8192, 16384), repetitions=5)


@dataclass(frozen=True)
class DensitySweepConfig:
    """Configuration of the density-sweep extension (E7).

    The titular question of the paper: how does the communication overhead of
    gossiping depend on the graph density?  We fix ``n`` and sweep the
    expected degree from ``log^2 n`` up to the complete graph.
    """

    size: int = 1024
    expected_degrees: Tuple[float, ...] = ()
    include_complete: bool = True
    protocols: Tuple[str, ...] = ("push-pull", "fast-gossiping", "memory")
    repetitions: int = 3
    seed: Optional[int] = 20150528
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "DensitySweepConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "DensitySweepConfig":
        """Larger graph (slower)."""
        return cls(size=8192, repetitions=3)

    def degrees(self) -> List[float]:
        """Expected degrees of the sweep (defaults to log²n · {1, 2, 4, 8, …})."""
        if self.expected_degrees:
            return list(self.expected_degrees)
        import math

        base = math.log2(self.size) ** 2
        degrees: List[float] = []
        factor = 1.0
        while base * factor < self.size / 2:
            degrees.append(base * factor)
            factor *= 4.0
        return degrees


@dataclass(frozen=True)
class BroadcastAblationConfig:
    """Configuration of the broadcast-vs-gossip separation ablation (E8)."""

    sizes: Tuple[int, ...] = (256, 512, 1024, 2048, 4096)
    repetitions: int = 3
    seed: Optional[int] = 20150529
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "BroadcastAblationConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "BroadcastAblationConfig":
        """Larger sizes (slower)."""
        return cls(sizes=(1024, 4096, 16384, 65536), repetitions=3)


@dataclass(frozen=True)
class ParameterAblationConfig:
    """Configuration of the fast-gossiping parameter ablation (E9)."""

    size: int = 1024
    walk_probability_factors: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    broadcast_steps_factors: Tuple[float, ...] = (0.25, 0.5, 1.0)
    repetitions: int = 3
    seed: Optional[int] = 20150530
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "ParameterAblationConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "ParameterAblationConfig":
        """Larger graph (slower)."""
        return cls(size=8192)


@dataclass(frozen=True)
class LeaderElectionConfig:
    """Configuration of the leader-election cost experiment (E10)."""

    sizes: Tuple[int, ...] = (256, 512, 1024, 2048, 4096)
    repetitions: int = 3
    seed: Optional[int] = 20150531
    density_exponent: float = 2.0
    n_jobs: int = 1

    @classmethod
    def quick(cls) -> "LeaderElectionConfig":
        """Laptop-scale default configuration."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "LeaderElectionConfig":
        """Larger sizes (slower)."""
        return cls(sizes=(1024, 4096, 16384), repetitions=5)
