"""Declarative scenario registry driving the resumable sweep engine.

Every reproduced figure/table and every extension experiment is described by
one :class:`ScenarioSpec` — a declarative bundle of

* the sweep **grid** (a function from a config object to ``(key, params)``
  configurations),
* the picklable **task function** executed per (configuration, repetition),
* the **aggregation** recipe (``group_by`` + ``metrics``, or a custom
  aggregate), plus optional record-preparation and finalize hooks for the
  experiment-specific derived columns and metadata,
* **config factories** for the library default, the CLI quick scale and the
  tiny ``--smoke`` scale, and
* **render hints** for the ASCII plots.

New workloads therefore become *data*: registering a spec is enough to make
an experiment runnable through :func:`run_scenario`, the ``repro scenarios``
CLI, the combined report builder and the on-disk result store — including
``--resume`` after an interrupted sweep.  The legacy ``run_figure1`` …
``run_table1`` entry points are thin wrappers over this registry.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis.supervisor import (
    RetryPolicy,
    SweepReport,
    TaskFailure,
    run_supervised_sweep,
)
from ..analysis.sweep import SweepTask, expand_grid, run_sweep
from ..engine.chaos import ChaosSpec, FaultPlan, corrupt_last_line
from ..io.store import ResultStore, StoreEntry, config_hash
from .runner import ExperimentResult, aggregate_records

__all__ = [
    "ScenarioSpec",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "resolve_config",
    "run_scenario",
]

#: (key, params) pairs as consumed by :func:`repro.analysis.sweep.expand_grid`.
Configurations = List[Tuple[Any, Dict[str, Any]]]


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment scenario.

    Attributes
    ----------
    name:
        Registry / CLI name (e.g. ``"figure1"``, ``"density"``).
    result_name:
        ``ExperimentResult.name`` (kept distinct for historical names such as
        ``density_sweep``); controls the output file names.
    description:
        One-line description copied into the result.
    task:
        Module-level task function (picklable for process pools).
    grid:
        ``config -> [(key, params), ...]`` building the sweep grid.
    default_config:
        Library-scale config factory (used by the legacy ``run_*`` wrappers
        when called without a config).
    cli_config:
        ``seed -> config`` factory at the CLI quick scale
        (``repro experiment`` / ``repro scenarios run``).
    smoke_config:
        ``seed -> config`` factory at the tiny ``--smoke`` scale.
    group_by / metrics:
        Default aggregation recipe (``aggregate_records``).
    prepare_records:
        Optional hook mutating the raw records before aggregation (e.g.
        unpacking composite keys into columns).
    aggregate:
        Optional full replacement for the default aggregation
        (``(records, config) -> rows``).
    finalize:
        Optional hook ``(rows, records, config) -> extra_metadata`` run after
        aggregation; may mutate rows (derived columns) and returns metadata
        entries (fit constants, growth summaries, ...).
    metadata:
        ``config -> dict`` of sweep settings recorded in the result.
    columns:
        Preferred column order for rendered tables.
    render:
        ASCII-plot hints (``x``, ``y``, ``group_by``, ``log_x``) or ``None``.
    run_override:
        Full bypass for non-sweep scenarios (Table 1's deterministic
        constants); receives the resolved config and returns the result.
    legacy_entry:
        Name of the thin legacy wrapper (documentation only).
    """

    name: str
    result_name: str
    description: str
    task: Optional[Callable[[SweepTask], Dict[str, Any]]] = None
    grid: Optional[Callable[[Any], Configurations]] = None
    default_config: Optional[Callable[[], Any]] = None
    cli_config: Optional[Callable[[Optional[int]], Any]] = None
    smoke_config: Optional[Callable[[Optional[int]], Any]] = None
    group_by: Tuple[str, ...] = ()
    metrics: Tuple[str, ...] = ()
    prepare_records: Optional[Callable[[List[Dict[str, Any]], Any], None]] = None
    aggregate: Optional[Callable[[List[Dict[str, Any]], Any], List[Dict[str, Any]]]] = None
    finalize: Optional[
        Callable[[List[Dict[str, Any]], List[Dict[str, Any]], Any], Optional[Dict[str, Any]]]
    ] = None
    metadata: Optional[Callable[[Any], Dict[str, Any]]] = None
    columns: Optional[Tuple[str, ...]] = None
    render: Optional[Mapping[str, Any]] = None
    run_override: Optional[Callable[[Any], ExperimentResult]] = None
    legacy_entry: str = ""


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, ScenarioSpec] = {}

#: Experiment modules that register scenario specs at import time.
_SCENARIO_MODULES = (
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "density_sweep",
    "broadcast_vs_gossip",
    "ablation_parameters",
    "ablation_redundancy",
    "leader_election_cost",
    "graph_models",
    "scale",
    "push_sum",
    "churn",
)


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (idempotent per name); returns it."""
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_registered() -> None:
    """Import every experiment module so its spec registration runs."""
    for module in _SCENARIO_MODULES:
        importlib.import_module(f"{__package__}.{module}")


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by registry name."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None


def scenario_names() -> List[str]:
    """Sorted names of all registered scenarios."""
    _ensure_registered()
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    _ensure_registered()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def resolve_config(
    spec: ScenarioSpec,
    *,
    config: Any = None,
    seed: Optional[int] = None,
    smoke: bool = False,
    profile: str = "default",
) -> Any:
    """Resolve the config object for a scenario run.

    ``config`` wins when given (with ``seed`` overriding its seed field);
    otherwise the ``smoke`` / ``cli`` / ``default`` factory is used.
    """
    if config is None:
        if smoke and spec.smoke_config is not None:
            return spec.smoke_config(seed)
        if profile == "cli" and spec.cli_config is not None:
            return spec.cli_config(seed)
        if spec.default_config is not None:
            config = spec.default_config()
        else:
            return None
    if seed is not None and hasattr(config, "seed"):
        config = replace(config, seed=seed)
    return config


def _task_pair(task: SweepTask) -> Tuple[str, int]:
    return (config_hash(task.key, task.params), task.repetition)


def run_scenario(
    scenario: Any,
    *,
    config: Any = None,
    seed: Optional[int] = None,
    smoke: bool = False,
    profile: str = "default",
    n_jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    read_store: Optional[Any] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    supervise: bool = False,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[Any] = None,
) -> ExperimentResult:
    """Run one scenario through the sweep engine and aggregate its result.

    Parameters
    ----------
    scenario:
        A :class:`ScenarioSpec` or a registry name.
    config:
        Config object; defaults per ``smoke`` / ``profile`` (see
        :func:`resolve_config`).
    seed:
        Optional base-seed override.
    smoke:
        Use the tiny smoke-scale config (CI / sanity runs).
    profile:
        ``"default"`` (library scale) or ``"cli"`` (quick CLI scale) when no
        explicit config is given.
    n_jobs:
        Worker processes; defaults to the config's ``n_jobs``.
    store:
        Optional :class:`~repro.io.store.ResultStore`; every completed
        (configuration, repetition) record is appended to it the moment it
        finishes, and aggregation reads the JSON-round-tripped records so
        fresh and resumed runs are record-identical.  The store doubles as a
        read-through cache: pairs already persisted (with matching derived
        seeds) are served without executing any simulation, and
        ``metadata["cache"]`` reports ``total`` / ``hits`` /
        ``primary_hits`` / ``secondary_hits`` / ``executed``.
    read_store:
        Optional secondary *read-only* cache (a :class:`ResultStore` or a
        store directory path) — e.g. a team-shared result store.  Requires
        ``store``.  Pairs missing from the primary store but present in the
        secondary (same config hash, repetition and derived seed) are copied
        into the primary store instead of being executed; quarantined
        failures and corrupt lines in the secondary never satisfy a hit.
    resume:
        With ``store``: skip pairs already persisted.  Without ``resume``,
        a store that already holds records for this scenario is an error
        (pass ``resume=True`` or point at a fresh store).
    progress:
        ``(done, total)`` callback over the *executed* tasks.
    supervise:
        Execute through the fault-tolerant supervisor
        (:func:`repro.analysis.supervisor.run_supervised_sweep`): task
        failures are retried with seeded backoff, dead worker pools are
        respawned, poison configurations are quarantined (persisted as
        structured failure entries when a store is given) and the resulting
        :class:`~repro.analysis.supervisor.SweepReport` lands in
        ``metadata["sweep_report"]``.  Implied by ``policy`` or ``chaos``.
    policy:
        The supervisor's :class:`~repro.analysis.supervisor.RetryPolicy`.
    chaos:
        A :class:`~repro.engine.chaos.FaultPlan` or
        :class:`~repro.engine.chaos.ChaosSpec` of deterministically injected
        faults (a spec is materialized against the full task grid, so the
        plan is stable across resumed runs).

    Returns
    -------
    ExperimentResult
        Aggregated rows, raw records (in deterministic task order) and
        metadata, exactly as the legacy per-experiment entry points return.
        Quarantined pairs are absent from the records (the sweep is degraded,
        not aborted).
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
    config = resolve_config(spec, config=config, seed=seed, smoke=smoke, profile=profile)

    if spec.run_override is not None:
        return spec.run_override(config)

    if spec.task is None or spec.grid is None:
        raise ValueError(f"scenario {spec.name!r} defines neither a sweep nor a run override")

    configurations = spec.grid(config)
    repetitions = int(getattr(config, "repetitions", 1))
    base_seed = getattr(config, "seed", None)
    if n_jobs is None:
        n_jobs = int(getattr(config, "n_jobs", 1))
    tasks = expand_grid(configurations, repetitions, base_seed)
    pairs = [_task_pair(task) for task in tasks]

    supervised = supervise or policy is not None or chaos is not None
    plan: Optional[FaultPlan] = None
    if chaos is not None:
        plan = chaos.materialize(pairs) if isinstance(chaos, ChaosSpec) else chaos
    report: Optional[SweepReport] = None

    def execute(
        exec_tasks: List[SweepTask],
        exec_pairs: List[Tuple[str, int]],
        on_result,
        on_failure,
    ) -> List[Optional[Dict[str, Any]]]:
        nonlocal report
        if supervised:
            exec_records, report = run_supervised_sweep(
                spec.task,
                exec_tasks,
                n_jobs=n_jobs,
                policy=policy,
                chaos=plan,
                pairs=exec_pairs,
                progress=progress,
                on_result=on_result,
                on_failure=on_failure,
            )
            return exec_records
        return run_sweep(
            spec.task, exec_tasks, n_jobs=n_jobs, progress=progress, on_result=on_result
        )

    if read_store is not None and store is None:
        raise ValueError("read_store requires a primary store to copy hits into")

    if store is not None:
        completed = store.completed_entries(spec.name)
        # Any pre-existing record (or quarantine failure) is a conflict
        # without resume — even from a different grid/scale, since the
        # scenario file would mix result sets.
        if not resume and (completed or store.failures(spec.name)):
            raise RuntimeError(
                f"store already holds records for scenario {spec.name!r}; "
                "pass resume=True (--resume) to continue, or use a fresh store"
            )
        secondary: Dict[Tuple[str, int], StoreEntry] = {}
        if read_store is not None:
            if not isinstance(read_store, ResultStore):
                read_store = ResultStore(read_store)
            # completed_entries already excludes quarantined failures and
            # CRC-skipped corrupt lines — those never satisfy a cache hit.
            secondary = read_store.completed_entries(spec.name)
        by_pair: Dict[Tuple[str, int], Dict[str, Any]] = {}
        pending: List[SweepTask] = []
        pending_pairs: List[Tuple[str, int]] = []
        primary_hits = 0
        secondary_hits = 0
        for task, pair in zip(tasks, pairs):
            entry = completed.get(pair)
            if entry is not None:
                if int(entry["seed"]) != task.seed:
                    # A pair persisted under a different base seed is stale,
                    # not resumable: serving it would mix seeds silently.
                    raise RuntimeError(
                        f"store record for scenario {spec.name!r} (config {pair[0]}, "
                        f"repetition {pair[1]}) was produced with seed {entry['seed']}, "
                        f"but this sweep derives seed {task.seed}; rerun with the "
                        "original base seed or use a fresh store"
                    )
                by_pair[pair] = entry["record"]
                primary_hits += 1
                continue
            shared = secondary.get(pair)
            if shared is not None and int(shared["seed"]) == task.seed:
                # Read-through: copy the shared record into the primary store
                # so later runs hit locally.  A seed mismatch is a plain miss
                # (the secondary store is someone else's cache, not an error).
                by_pair[pair] = store.append(
                    spec.name,
                    key=task.key,
                    params=task.params,
                    repetition=task.repetition,
                    seed=task.seed,
                    record=shared["record"],
                )
                secondary_hits += 1
                continue
            pending.append(task)
            pending_pairs.append(pair)

        def persist(index: int, task: SweepTask, record: Dict[str, Any]) -> Dict[str, Any]:
            pair = _task_pair(task)
            stored = store.append(
                spec.name,
                key=task.key,
                params=task.params,
                repetition=task.repetition,
                seed=task.seed,
                record=record,
            )
            if plan is not None and plan.store_faults(pair):
                # Chaos: garble the just-written line in place.  The in-memory
                # record stays good for this run; a later scan must skip and
                # report the corrupt line and resume must re-run the pair.
                corrupt_last_line(store.path_for(spec.name))
            by_pair[pair] = stored
            return stored

        def persist_failure(index: int, task: SweepTask, failure: TaskFailure) -> None:
            store.append_failure(
                spec.name,
                key=task.key,
                params=task.params,
                repetition=task.repetition,
                seed=task.seed,
                failure=failure.to_jsonable(),
            )

        execute(pending, pending_pairs, persist, persist_failure if supervised else None)
        records = [by_pair[pair] for pair in pairs if pair in by_pair]
        cache_info: Optional[Dict[str, int]] = {
            "total": len(tasks),
            "hits": primary_hits + secondary_hits,
            "primary_hits": primary_hits,
            "secondary_hits": secondary_hits,
            "executed": len(pending),
        }
    else:
        records = execute(tasks, pairs, None, None)
        cache_info = None

    records = [record for record in records if record is not None]
    if spec.prepare_records is not None:
        spec.prepare_records(records, config)
    if spec.aggregate is not None:
        rows = spec.aggregate(records, config)
    else:
        rows = aggregate_records(records, spec.group_by, spec.metrics)
    metadata: Dict[str, Any] = dict(spec.metadata(config)) if spec.metadata else {}
    if cache_info is not None:
        metadata["cache"] = cache_info
        if report is not None:
            report.cache_hits = cache_info["hits"]
            report.executed = cache_info["executed"]
    if report is not None:
        metadata["sweep_report"] = report.to_jsonable()
    if spec.finalize is not None:
        extra = spec.finalize(rows, records, config)
        if extra:
            metadata.update(extra)
    return ExperimentResult(
        name=spec.result_name,
        description=spec.description,
        rows=rows,
        raw_records=records,
        metadata=metadata,
    )
