"""Extension experiment — gossiping under node churn (event clock).

The continuous-time model makes membership churn expressible: nodes leave
and rejoin at seeded wakeup indices (:func:`repro.engine.event_clock
.sample_churn_plan`) while event-clock push-pull keeps running.  A node that
is away neither acts nor answers — its Poisson clock stands still and calls
into it open a channel but exchange nothing — yet it keeps its knowledge and
resumes where it left off when it rejoins.  Completion targets the
finally-alive membership.

The sweep varies the leaving fraction per size and records how much extra
work (wakeups, exchanges per node) the protocol spends absorbing the churn,
plus whether gossiping still completes — the event-clock analogue of the
paper's crash-failure robustness experiments, with transient instead of
permanent failures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import ChurnConfig
from .runner import ExperimentResult, churn_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_churn", "CHURN_COLUMNS", "CHURN"]

#: Columns of the aggregated churn rows.
CHURN_COLUMNS = (
    "n",
    "churn_fraction",
    "rounds",
    "events",
    "sim_time",
    "messages_per_node",
    "survivors",
    "completed",
    "repetitions",
)


def _configurations(config: ChurnConfig) -> List[Tuple[Tuple[int, float], Dict]]:
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for fraction in config.churn_fractions:
            configurations.append(
                (
                    (n, fraction),
                    {
                        "graph_spec": spec.as_dict(),
                        "churn_fraction": fraction,
                        "rejoin_fraction": config.rejoin_fraction,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: ChurnConfig,
) -> Dict[str, Any]:
    for row in rows:
        row["completed"] = all(
            r["completed"]
            for r in records
            if r["n"] == row["n"]
            and r["churn_fraction"] == row["churn_fraction"]
        )
    return {"all_completed": all(r["completed"] for r in records)}


CHURN = register(
    ScenarioSpec(
        name="churn",
        result_name="churn",
        description=(
            "Event-clock push-pull under seeded join/leave churn: extra "
            "wakeups and messages spent absorbing transient membership "
            "changes, per leaving fraction"
        ),
        task=churn_task,
        grid=_configurations,
        default_config=ChurnConfig.quick,
        cli_config=lambda seed: ChurnConfig(
            seed=20150533 if seed is None else seed
        ),
        smoke_config=lambda seed: ChurnConfig(
            sizes=(96,),
            churn_fractions=(0.0, 0.125),
            repetitions=1,
            seed=20150533 if seed is None else seed,
        ),
        group_by=("n", "churn_fraction"),
        metrics=(
            "rounds",
            "events",
            "sim_time",
            "messages_per_node",
            "opens_per_node",
            "survivors",
        ),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "churn_fractions": list(config.churn_fractions),
            "rejoin_fraction": config.rejoin_fraction,
            "repetitions": config.repetitions,
            "seed": config.seed,
            "density_exponent": config.density_exponent,
        },
        columns=CHURN_COLUMNS,
        render={
            "x": "churn_fraction",
            "y": "messages_per_node",
            "group_by": "n",
        },
        legacy_entry="run_churn",
    )
)


def run_churn(config: Optional[ChurnConfig] = None) -> ExperimentResult:
    """Run the node-churn sweep."""
    return run_scenario(CHURN, config=config or ChurnConfig.quick())
