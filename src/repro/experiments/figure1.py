"""Experiment E1 — Figure 1: communication overhead vs graph size.

The paper's Figure 1 plots the average number of messages sent per node for
three gossiping methods (plain push–pull, Algorithm 1 / fast-gossiping and
Algorithm 2 / memory model) on Erdős–Rényi graphs ``G(n, log²n / n)`` with
``n`` from 10³ to 10⁶.  The reproduced series preserves the qualitative
findings:

* push–pull cost grows ``Theta(log n)`` — highest and growing,
* fast-gossiping sits below push–pull and grows like ``log n / log log n``
  with an increasing gap,
* the memory model stays bounded by a small constant (≈5 in the paper).

The experiment is expressed as a :class:`~repro.experiments.scenarios
.ScenarioSpec` (grid + task + aggregation + finalize hook); ``run_figure1``
is a thin wrapper over the registry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..analysis.bounds import (
    fast_gossiping_messages_per_node,
    fit_constant,
    memory_gossiping_messages_per_node,
    push_pull_gossip_messages_per_node,
)
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import SizeSweepConfig
from .runner import ExperimentResult, gossip_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_figure1", "FIGURE1_COLUMNS", "FIGURE1"]

#: Columns of the aggregated Figure 1 rows (used by reports and benches).
FIGURE1_COLUMNS = (
    "n",
    "protocol",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "completed",
    "repetitions",
)


def _configurations(config: SizeSweepConfig) -> List[Tuple[Tuple[int, str], Dict]]:
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for protocol in config.protocols:
            options: Dict[str, object] = {}
            if protocol == "memory":
                options = {"leader": 0}
            configurations.append(
                (
                    (n, protocol),
                    {
                        "graph_spec": spec.as_dict(),
                        "protocol": protocol,
                        "protocol_options": options,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: SizeSweepConfig,
) -> Dict[str, Any]:
    """Add per-row completion flags and fit the asymptotic shapes."""
    for row in rows:
        row["completed"] = all(
            r["completed"]
            for r in records
            if r["n"] == row["n"] and r["protocol"] == row["protocol"]
        )
    fits: Dict[str, float] = {}
    shapes = {
        "push-pull": push_pull_gossip_messages_per_node,
        "fast-gossiping": fast_gossiping_messages_per_node,
        "memory": memory_gossiping_messages_per_node,
    }
    for protocol, bound in shapes.items():
        series = [(row["n"], row["messages_per_node"]) for row in rows if row["protocol"] == protocol]
        if series:
            sizes, values = zip(*series)
            fits[protocol] = fit_constant(sizes, values, bound)
    return {"bound_fit_constants": fits}


FIGURE1 = register(
    ScenarioSpec(
        name="figure1",
        result_name="figure1",
        description=(
            "Figure 1: average messages sent per node vs graph size on "
            "G(n, log^2 n / n) for push-pull, fast-gossiping and the memory model"
        ),
        task=gossip_task,
        grid=_configurations,
        default_config=SizeSweepConfig.quick,
        cli_config=lambda seed: SizeSweepConfig(
            sizes=(256, 512, 1024, 2048), repetitions=2, seed=20150525 if seed is None else seed
        ),
        smoke_config=lambda seed: SizeSweepConfig(
            sizes=(96, 128), repetitions=1, seed=20150525 if seed is None else seed
        ),
        group_by=("n", "protocol"),
        metrics=("messages_per_node", "rounds", "opens_per_node", "strict_cost_per_node"),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
            "density_exponent": config.density_exponent,
        },
        columns=FIGURE1_COLUMNS,
        render={"x": "n", "y": "messages_per_node", "group_by": "protocol", "log_x": True},
        legacy_entry="run_figure1",
    )
)


def run_figure1(config: Optional[SizeSweepConfig] = None) -> ExperimentResult:
    """Reproduce Figure 1 (messages per node vs graph size, three protocols)."""
    return run_scenario(FIGURE1, config=config or SizeSweepConfig.quick())
