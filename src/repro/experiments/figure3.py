"""Experiment E4 — Figure 3: robustness at two additional graph sizes.

Figure 3 of the paper repeats the Figure 2 robustness study on graphs of
100,000 and 500,000 nodes, confirming that the loss-ratio curve has the same
shape across scales.  The reproduction runs the identical sweep on two
(smaller) sizes and reports the same ratio series per size.

The scenario expresses the multi-size study as a single grid whose keys are
``(n, failed)`` — seeds derive from a stable hash of the key, so every
(size, failure-count) cell keeps its trajectory no matter which other sizes
are in the grid.  ``run_figure3`` is a thin wrapper over the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import RobustnessConfig
from .figure2 import FIGURE2_COLUMNS
from .runner import ExperimentResult, robustness_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = [
    "run_figure3",
    "FIGURE3_COLUMNS",
    "FIGURE3",
    "Figure3Config",
    "default_figure3_sizes",
]

FIGURE3_COLUMNS = FIGURE2_COLUMNS


def default_figure3_sizes() -> Tuple[int, int]:
    """Two graph sizes mirroring the paper's 10^5 / 5*10^5 pair (scaled down)."""
    return (1024, 2048)


@dataclass(frozen=True)
class Figure3Config(RobustnessConfig):
    """Robustness config with an explicit size list (one sweep, many sizes)."""

    sizes: Tuple[int, ...] = (1024, 2048)


def _configurations(config: Figure3Config) -> List[Tuple[Tuple[int, int], Dict]]:
    configurations = []
    for size in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=int(size),
            params={
                "p": paper_edge_probability(int(size), config.density_exponent),
                "require_connected": True,
            },
        )
        for fraction in config.failed_fractions:
            failed = int(round(size * fraction))
            configurations.append(
                (
                    (int(size), failed),
                    {
                        "graph_spec": spec.as_dict(),
                        "failed": failed,
                        "num_trees": config.num_trees,
                        "leader": 0,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: Figure3Config,
) -> None:
    for row in rows:
        row["failed_fraction"] = row["failed"] / row["n"]


FIGURE3 = register(
    ScenarioSpec(
        name="figure3",
        result_name="figure3",
        description=(
            "Figure 3: robustness ratio (additional lost messages / F) vs F at "
            "two graph sizes"
        ),
        task=robustness_task,
        grid=_configurations,
        default_config=Figure3Config,
        cli_config=lambda seed: Figure3Config(
            sizes=(512, 1024), repetitions=2, seed=20150526 if seed is None else seed
        ),
        smoke_config=lambda seed: Figure3Config(
            sizes=(96, 128),
            failed_fractions=(0.1, 0.4),
            repetitions=1,
            seed=20150526 if seed is None else seed,
        ),
        group_by=("n", "failed"),
        metrics=("additional_lost", "loss_ratio"),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "num_trees": config.num_trees,
            "failed_fractions": list(config.failed_fractions),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=FIGURE3_COLUMNS,
        render={"x": "failed", "y": "loss_ratio", "group_by": "n", "log_x": False},
        legacy_entry="run_figure3",
    )
)


def run_figure3(
    config: Optional[RobustnessConfig] = None,
    *,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Reproduce Figure 3 (robustness ratio vs F at two graph sizes)."""
    base = config or RobustnessConfig.quick()
    explicit = tuple(int(s) for s in sizes) if sizes is not None else None
    if isinstance(base, Figure3Config):
        resolved = replace(base, sizes=explicit) if explicit is not None else base
    else:
        resolved = Figure3Config(
            size=base.size,
            failed_fractions=base.failed_fractions,
            num_trees=base.num_trees,
            repetitions=base.repetitions,
            seed=base.seed,
            density_exponent=base.density_exponent,
            n_jobs=base.n_jobs,
            sizes=explicit if explicit is not None else default_figure3_sizes(),
        )
    return run_scenario(FIGURE3, config=resolved)
