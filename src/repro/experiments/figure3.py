"""Experiment E4 — Figure 3: robustness at two additional graph sizes.

Figure 3 of the paper repeats the Figure 2 robustness study on graphs of
100,000 and 500,000 nodes, confirming that the loss-ratio curve has the same
shape across scales.  The reproduction runs the identical sweep on two
(smaller) sizes and reports the same ratio series per size.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from .config import RobustnessConfig
from .figure2 import FIGURE2_COLUMNS, robustness_configurations
from .runner import ExperimentResult, aggregate_records, robustness_task, run_gossip_sweep

__all__ = ["run_figure3", "FIGURE3_COLUMNS", "default_figure3_sizes"]

FIGURE3_COLUMNS = FIGURE2_COLUMNS


def default_figure3_sizes() -> Tuple[int, int]:
    """Two graph sizes mirroring the paper's 10^5 / 5*10^5 pair (scaled down)."""
    return (1024, 2048)


def run_figure3(
    config: Optional[RobustnessConfig] = None,
    *,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Reproduce Figure 3 (robustness ratio vs F at two graph sizes)."""
    base = config or RobustnessConfig.quick()
    sizes = tuple(sizes) if sizes is not None else default_figure3_sizes()
    all_records: List[dict] = []
    for index, size in enumerate(sizes):
        per_size = replace(
            base,
            size=int(size),
            seed=None if base.seed is None else base.seed + index,
        )
        records = run_gossip_sweep(
            robustness_configurations(per_size),
            repetitions=per_size.repetitions,
            seed=per_size.seed,
            n_jobs=per_size.n_jobs,
            task=robustness_task,
        )
        all_records.extend(records)
    rows = aggregate_records(
        all_records,
        group_by=("n", "failed"),
        metrics=("additional_lost", "loss_ratio"),
    )
    for row in rows:
        row["failed_fraction"] = row["failed"] / row["n"]
    return ExperimentResult(
        name="figure3",
        description=(
            "Figure 3: robustness ratio (additional lost messages / F) vs F at "
            "two graph sizes"
        ),
        rows=rows,
        raw_records=all_records,
        metadata={
            "sizes": list(sizes),
            "num_trees": base.num_trees,
            "failed_fractions": list(base.failed_fractions),
            "repetitions": base.repetitions,
            "seed": base.seed,
        },
    )
