"""Experiment E5 — Figure 5: threshold exceedance of the robustness losses.

Figure 5 of the paper shows, for graphs of 100,000 and 500,000 nodes and a
series of failed-node counts, the *percentage of runs* in which more than
``T`` additional healthy messages were lost, for ``T ∈ {0, 10, 100}``.  The
qualitative statement: even for thousands of failed nodes almost no run loses
more than a handful of additional messages.

The reproduction runs repeated robustness simulations per (size, failure
count) and reports one exceedance-fraction column per threshold.  The custom
exceedance aggregation is declared on the scenario spec; ``run_figure5`` is a
thin wrapper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import RobustnessDetailConfig
from .runner import ExperimentResult, robustness_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_figure5", "figure5_columns", "FIGURE5"]


def figure5_columns(thresholds) -> Tuple[str, ...]:
    """Column layout of the aggregated Figure 5 rows."""
    return ("n", "failed", "failed_fraction", "repetitions") + tuple(
        f"exceed_T{t}" for t in thresholds
    )


def _configurations(config: RobustnessDetailConfig) -> List[Tuple[Tuple[int, int], Dict]]:
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for fraction in config.failed_fractions:
            failed = int(round(n * fraction))
            configurations.append(
                (
                    (n, failed),
                    {
                        "graph_spec": spec.as_dict(),
                        "failed": failed,
                        "num_trees": config.num_trees,
                        "leader": 0,
                    },
                )
            )
    return configurations


def _aggregate(
    records: List[dict], config: RobustnessDetailConfig
) -> List[Dict[str, object]]:
    """Aggregate per-run losses into exceedance fractions per (n, failed)."""
    grouped: Dict[Tuple[int, int], List[dict]] = {}
    order: List[Tuple[int, int]] = []
    for record in records:
        key = (record["n"], record["failed"])
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(record)
    rows: List[Dict[str, object]] = []
    for key in order:
        members = grouped[key]
        row: Dict[str, object] = {
            "n": key[0],
            "failed": key[1],
            "failed_fraction": key[1] / key[0],
            "repetitions": len(members),
        }
        for threshold in config.thresholds:
            exceed = sum(1 for m in members if m["additional_lost"] > threshold)
            row[f"exceed_T{threshold}"] = exceed / len(members)
        rows.append(row)
    return rows


FIGURE5 = register(
    ScenarioSpec(
        name="figure5",
        result_name="figure5",
        description=(
            "Figure 5: fraction of robustness runs in which more than T "
            "additional healthy messages were lost (T per column)"
        ),
        task=robustness_task,
        grid=_configurations,
        default_config=RobustnessDetailConfig.quick,
        cli_config=lambda seed: RobustnessDetailConfig(
            sizes=(512, 1024), repetitions=3, seed=20150527 if seed is None else seed
        ),
        smoke_config=lambda seed: RobustnessDetailConfig(
            sizes=(128,),
            thresholds=(0, 10),
            failed_fractions=(0.1, 0.5),
            repetitions=2,
            seed=20150527 if seed is None else seed,
        ),
        aggregate=_aggregate,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "thresholds": list(config.thresholds),
            "failed_fractions": list(config.failed_fractions),
            "num_trees": config.num_trees,
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        render={"x": "failed", "y": "exceed_T0", "group_by": "n", "log_x": False},
        legacy_entry="run_figure5",
    )
)


def run_figure5(config: Optional[RobustnessDetailConfig] = None) -> ExperimentResult:
    """Reproduce Figure 5 (fraction of runs losing more than T extra messages)."""
    return run_scenario(FIGURE5, config=config or RobustnessDetailConfig.quick())
