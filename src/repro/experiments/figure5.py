"""Experiment E5 — Figure 5: threshold exceedance of the robustness losses.

Figure 5 of the paper shows, for graphs of 100,000 and 500,000 nodes and a
series of failed-node counts, the *percentage of runs* in which more than
``T`` additional healthy messages were lost, for ``T ∈ {0, 10, 100}``.  The
qualitative statement: even for thousands of failed nodes almost no run loses
more than a handful of additional messages.

The reproduction runs repeated robustness simulations per (size, failure
count) and reports one exceedance-fraction column per threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import RobustnessDetailConfig
from .runner import ExperimentResult, robustness_task, run_gossip_sweep

__all__ = ["run_figure5", "figure5_columns"]


def figure5_columns(thresholds) -> Tuple[str, ...]:
    """Column layout of the aggregated Figure 5 rows."""
    return ("n", "failed", "failed_fraction", "repetitions") + tuple(
        f"exceed_T{t}" for t in thresholds
    )


def run_figure5(config: Optional[RobustnessDetailConfig] = None) -> ExperimentResult:
    """Reproduce Figure 5 (fraction of runs losing more than T extra messages)."""
    config = config or RobustnessDetailConfig.quick()
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for fraction in config.failed_fractions:
            failed = int(round(n * fraction))
            configurations.append(
                (
                    (n, failed),
                    {
                        "graph_spec": spec.as_dict(),
                        "failed": failed,
                        "num_trees": config.num_trees,
                        "leader": 0,
                    },
                )
            )
    records = run_gossip_sweep(
        configurations,
        repetitions=config.repetitions,
        seed=config.seed,
        n_jobs=config.n_jobs,
        task=robustness_task,
    )

    # Aggregate into exceedance fractions per (n, failed).
    grouped: Dict[Tuple[int, int], List[dict]] = {}
    order: List[Tuple[int, int]] = []
    for record in records:
        key = (record["n"], record["failed"])
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(record)
    rows: List[Dict[str, object]] = []
    for key in order:
        members = grouped[key]
        row: Dict[str, object] = {
            "n": key[0],
            "failed": key[1],
            "failed_fraction": key[1] / key[0],
            "repetitions": len(members),
        }
        for threshold in config.thresholds:
            exceed = sum(1 for m in members if m["additional_lost"] > threshold)
            row[f"exceed_T{threshold}"] = exceed / len(members)
        rows.append(row)

    return ExperimentResult(
        name="figure5",
        description=(
            "Figure 5: fraction of robustness runs in which more than T "
            "additional healthy messages were lost (T per column)"
        ),
        rows=rows,
        raw_records=records,
        metadata={
            "sizes": list(config.sizes),
            "thresholds": list(config.thresholds),
            "failed_fractions": list(config.failed_fractions),
            "num_trees": config.num_trees,
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
    )
