"""Experiment E7 (extension) — the titular density sweep.

The paper's central claim is that — unlike for broadcasting — the message
complexity of randomized gossiping does *not* deteriorate when moving from the
complete graph to sparse random graphs of degree ``log^{2+eps} n``.  The
published evaluation fixes the density at ``log² n`` and sweeps ``n``; this
extension fixes ``n`` and sweeps the density from ``log² n`` up to the
complete graph, which exposes the claim directly: for each protocol the
per-node message count should stay essentially flat across densities.

Declared as a scenario spec; ``run_density_sweep`` is a thin wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..graphs.generators import GraphSpec
from .config import DensitySweepConfig
from .runner import ExperimentResult, gossip_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_density_sweep", "DENSITY_COLUMNS", "DENSITY_SWEEP"]

DENSITY_COLUMNS = (
    "expected_degree",
    "graph",
    "protocol",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "repetitions",
)


def _configurations(config: DensitySweepConfig) -> List[Tuple[Tuple[str, str], Dict]]:
    configurations = []
    n = config.size
    specs: List[Tuple[str, GraphSpec]] = []
    for degree in config.degrees():
        specs.append(
            (
                f"er_d{int(round(degree))}",
                GraphSpec(
                    kind="erdos_renyi",
                    n=n,
                    params={"expected_degree": float(degree), "require_connected": True},
                ),
            )
        )
    if config.include_complete:
        specs.append(("complete", GraphSpec(kind="complete", n=n)))
    for label, spec in specs:
        for protocol in config.protocols:
            options: Dict[str, object] = {"leader": 0} if protocol == "memory" else {}
            configurations.append(
                (
                    (label, protocol),
                    {
                        "graph_spec": spec.as_dict(),
                        "protocol": protocol,
                        "protocol_options": options,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: DensitySweepConfig,
) -> Dict[str, Any]:
    for row in rows:
        row["expected_degree"] = row.pop("mean_degree")

    # Flatness summary per protocol: max/min ratio of the per-node cost across
    # densities; values near 1 support the paper's thesis.
    flatness: Dict[str, float] = {}
    for protocol in config.protocols:
        values = [row["messages_per_node"] for row in rows if row["protocol"] == protocol]
        if values and min(values) > 0:
            flatness[protocol] = max(values) / min(values)
    return {"max_over_min_cost_ratio": flatness}


DENSITY_SWEEP = register(
    ScenarioSpec(
        name="density",
        result_name="density_sweep",
        description=(
            "Density sweep (extension): messages per node vs expected degree at "
            "fixed n, from log^2 n up to the complete graph"
        ),
        task=gossip_task,
        grid=_configurations,
        default_config=DensitySweepConfig.quick,
        cli_config=lambda seed: DensitySweepConfig(
            size=512, repetitions=2, seed=20150528 if seed is None else seed
        ),
        smoke_config=lambda seed: DensitySweepConfig(
            size=128,
            expected_degrees=(32.0, 64.0),
            include_complete=True,
            repetitions=1,
            seed=20150528 if seed is None else seed,
        ),
        group_by=("graph", "protocol"),
        metrics=("messages_per_node", "rounds", "mean_degree"),
        finalize=_finalize,
        metadata=lambda config: {
            "size": config.size,
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=DENSITY_COLUMNS,
        render={
            "x": "expected_degree",
            "y": "messages_per_node",
            "group_by": "protocol",
            "log_x": True,
        },
        legacy_entry="run_density_sweep",
    )
)


def run_density_sweep(config: Optional[DensitySweepConfig] = None) -> ExperimentResult:
    """Run the density sweep: per-node message cost vs expected degree."""
    return run_scenario(DENSITY_SWEEP, config=config or DensitySweepConfig.quick())
