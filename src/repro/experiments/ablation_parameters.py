"""Experiment E9 (ablation) — sensitivity of fast-gossiping to its parameters.

Section 5 of the paper stresses that the message complexity can be reduced
significantly "by tuning the parameters of our algorithms".  This ablation
varies the two most influential knobs of Algorithm 1 — the per-round
random-walk probability factor and the length of the per-round broadcast
sub-phase — and reports the resulting per-node message cost and running time,
making the time/messages trade-off of the paper concrete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import ParameterAblationConfig
from .runner import ExperimentResult, aggregate_records, run_gossip_sweep

__all__ = ["run_parameter_ablation", "ABLATION_COLUMNS"]

ABLATION_COLUMNS = (
    "walk_probability_factor",
    "broadcast_steps_factor",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "completed",
    "repetitions",
)


def run_parameter_ablation(
    config: Optional[ParameterAblationConfig] = None,
) -> ExperimentResult:
    """Sweep fast-gossiping's walk probability and broadcast length."""
    config = config or ParameterAblationConfig.quick()
    spec = GraphSpec(
        kind="erdos_renyi",
        n=config.size,
        params={
            "p": paper_edge_probability(config.size, config.density_exponent),
            "require_connected": True,
        },
    )
    configurations: List[Tuple[Tuple[float, float], Dict]] = []
    for walk_factor in config.walk_probability_factors:
        for broadcast_factor in config.broadcast_steps_factors:
            configurations.append(
                (
                    (walk_factor, broadcast_factor),
                    {
                        "graph_spec": spec.as_dict(),
                        "protocol": "fast-gossiping",
                        "protocol_options": {
                            "walk_probability_factor": float(walk_factor),
                            "broadcast_steps_factor": float(broadcast_factor),
                        },
                    },
                )
            )
    records = run_gossip_sweep(
        configurations,
        repetitions=config.repetitions,
        seed=config.seed,
        n_jobs=config.n_jobs,
    )
    for record in records:
        walk_factor, broadcast_factor = record["key"]
        record["walk_probability_factor"] = walk_factor
        record["broadcast_steps_factor"] = broadcast_factor
    rows = aggregate_records(
        records,
        group_by=("walk_probability_factor", "broadcast_steps_factor"),
        metrics=("messages_per_node", "rounds"),
    )
    for row in rows:
        row["completed"] = all(
            r["completed"]
            for r in records
            if r["walk_probability_factor"] == row["walk_probability_factor"]
            and r["broadcast_steps_factor"] == row["broadcast_steps_factor"]
        )
    return ExperimentResult(
        name="ablation_parameters",
        description=(
            "Fast-gossiping parameter ablation: per-node message cost vs "
            "random-walk probability factor and broadcast sub-phase length"
        ),
        rows=rows,
        raw_records=records,
        metadata={
            "size": config.size,
            "repetitions": config.repetitions,
            "seed": config.seed,
            "walk_probability_factors": list(config.walk_probability_factors),
            "broadcast_steps_factors": list(config.broadcast_steps_factors),
        },
    )
