"""Experiment E9 (ablation) — sensitivity of fast-gossiping to its parameters.

Section 5 of the paper stresses that the message complexity can be reduced
significantly "by tuning the parameters of our algorithms".  This ablation
varies the two most influential knobs of Algorithm 1 — the per-round
random-walk probability factor and the length of the per-round broadcast
sub-phase — and reports the resulting per-node message cost and running time,
making the time/messages trade-off of the paper concrete.

Declared as a scenario spec; ``run_parameter_ablation`` is a thin wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import ParameterAblationConfig
from .runner import ExperimentResult, gossip_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_parameter_ablation", "ABLATION_COLUMNS", "PARAMETER_ABLATION"]

ABLATION_COLUMNS = (
    "walk_probability_factor",
    "broadcast_steps_factor",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "completed",
    "repetitions",
)


def _configurations(
    config: ParameterAblationConfig,
) -> List[Tuple[Tuple[float, float], Dict]]:
    spec = GraphSpec(
        kind="erdos_renyi",
        n=config.size,
        params={
            "p": paper_edge_probability(config.size, config.density_exponent),
            "require_connected": True,
        },
    )
    configurations: List[Tuple[Tuple[float, float], Dict]] = []
    for walk_factor in config.walk_probability_factors:
        for broadcast_factor in config.broadcast_steps_factors:
            configurations.append(
                (
                    (walk_factor, broadcast_factor),
                    {
                        "graph_spec": spec.as_dict(),
                        "protocol": "fast-gossiping",
                        "protocol_options": {
                            "walk_probability_factor": float(walk_factor),
                            "broadcast_steps_factor": float(broadcast_factor),
                        },
                    },
                )
            )
    return configurations


def _prepare_records(records: List[Dict[str, Any]], config: ParameterAblationConfig) -> None:
    """Unpack the composite configuration key into per-record columns."""
    for record in records:
        walk_factor, broadcast_factor = record["key"]
        record["walk_probability_factor"] = walk_factor
        record["broadcast_steps_factor"] = broadcast_factor


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: ParameterAblationConfig,
) -> None:
    for row in rows:
        row["completed"] = all(
            r["completed"]
            for r in records
            if r["walk_probability_factor"] == row["walk_probability_factor"]
            and r["broadcast_steps_factor"] == row["broadcast_steps_factor"]
        )


PARAMETER_ABLATION = register(
    ScenarioSpec(
        name="parameters",
        result_name="ablation_parameters",
        description=(
            "Fast-gossiping parameter ablation: per-node message cost vs "
            "random-walk probability factor and broadcast sub-phase length"
        ),
        task=gossip_task,
        grid=_configurations,
        default_config=ParameterAblationConfig.quick,
        cli_config=lambda seed: ParameterAblationConfig(
            size=512, repetitions=2, seed=20150530 if seed is None else seed
        ),
        smoke_config=lambda seed: ParameterAblationConfig(
            size=128,
            walk_probability_factors=(0.5, 2.0),
            broadcast_steps_factors=(0.5,),
            repetitions=1,
            seed=20150530 if seed is None else seed,
        ),
        group_by=("walk_probability_factor", "broadcast_steps_factor"),
        metrics=("messages_per_node", "rounds"),
        prepare_records=_prepare_records,
        finalize=_finalize,
        metadata=lambda config: {
            "size": config.size,
            "repetitions": config.repetitions,
            "seed": config.seed,
            "walk_probability_factors": list(config.walk_probability_factors),
            "broadcast_steps_factors": list(config.broadcast_steps_factors),
        },
        columns=ABLATION_COLUMNS,
        render=None,
        legacy_entry="run_parameter_ablation",
    )
)


def run_parameter_ablation(
    config: Optional[ParameterAblationConfig] = None,
) -> ExperimentResult:
    """Sweep fast-gossiping's walk probability and broadcast length."""
    return run_scenario(PARAMETER_ABLATION, config=config or ParameterAblationConfig.quick())
