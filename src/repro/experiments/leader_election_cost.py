"""Experiment E10 (ablation) — cost and correctness of leader election.

Theorem 2 of the paper states that Algorithm 2 needs ``O(n log log n)``
transmissions when leader election (Algorithm 3) has to run first.  This
experiment measures the election's per-node packet cost as a function of ``n``
for both variants implemented here — the literal pseudocode (active nodes push
every step, ``Theta(log n)`` per node) and the budgeted variant in which nodes
go quiet a few steps after activation (``Theta(log log n)`` per node) — and
verifies that the elected leader is unique.

Declared as a scenario spec; ``run_leader_election_cost`` is a thin wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import math

from ..analysis.sweep import SweepTask
from ..core.leader_election import LeaderElection
from ..core.parameters import LeaderElectionParameters, loglog2
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec, make_graph
from .config import LeaderElectionConfig
from .runner import ExperimentResult
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = [
    "run_leader_election_cost",
    "election_task",
    "ELECTION_COLUMNS",
    "LEADER_ELECTION_COST",
]

ELECTION_COLUMNS = (
    "n",
    "variant",
    "messages_per_node",
    "messages_per_node_std",
    "unique_fraction",
    "rounds",
    "repetitions",
)


def election_task(task: SweepTask) -> Dict[str, Any]:
    """Run one leader election.

    Expected task params: ``graph_spec`` (dict), ``variant``
    (``"pseudocode"`` or ``"budgeted"``).
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    graph = make_graph(spec, rng=task.seed)
    variant = params["variant"]
    if variant == "budgeted":
        limit = max(2, math.ceil(2 * loglog2(spec.n)))
        election = LeaderElection(LeaderElectionParameters(), active_push_limit=limit)
    else:
        election = LeaderElection(LeaderElectionParameters())
    result = election.run(graph, rng=task.seed + 1)
    return {
        "n": spec.n,
        "variant": variant,
        "messages_per_node": result.messages_per_node(),
        "rounds": result.rounds,
        "unique": result.unique,
        "candidates": int(result.candidates.size),
    }


def _configurations(config: LeaderElectionConfig) -> List[Tuple[Tuple[int, str], Dict]]:
    configurations: List[Tuple[Tuple[int, str], Dict]] = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for variant in ("pseudocode", "budgeted"):
            configurations.append(
                ((n, variant), {"graph_spec": spec.as_dict(), "variant": variant})
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: LeaderElectionConfig,
) -> None:
    for row in rows:
        members = [
            r for r in records if r["n"] == row["n"] and r["variant"] == row["variant"]
        ]
        row["unique_fraction"] = sum(1 for m in members if m["unique"]) / len(members)


LEADER_ELECTION_COST = register(
    ScenarioSpec(
        name="election",
        result_name="leader_election_cost",
        description=(
            "Leader election (Algorithm 3): per-node packet cost and uniqueness "
            "vs n, pseudocode vs budgeted-push variant"
        ),
        task=election_task,
        grid=_configurations,
        default_config=LeaderElectionConfig.quick,
        cli_config=lambda seed: LeaderElectionConfig(
            sizes=(256, 512, 1024), repetitions=2, seed=20150531 if seed is None else seed
        ),
        smoke_config=lambda seed: LeaderElectionConfig(
            sizes=(128,), repetitions=1, seed=20150531 if seed is None else seed
        ),
        group_by=("n", "variant"),
        metrics=("messages_per_node", "rounds"),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=ELECTION_COLUMNS,
        render={"x": "n", "y": "messages_per_node", "group_by": "variant", "log_x": True},
        legacy_entry="run_leader_election_cost",
    )
)


def run_leader_election_cost(
    config: Optional[LeaderElectionConfig] = None,
) -> ExperimentResult:
    """Measure leader-election cost per node vs n for both variants."""
    return run_scenario(LEADER_ELECTION_COST, config=config or LeaderElectionConfig.quick())
