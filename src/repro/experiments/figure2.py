"""Experiment E3 — Figure 2: robustness of the memory model under failures.

Figure 2 of the paper: on a 10⁶-node ``G(n, log²n/n)`` graph, Algorithm 2
builds three communication trees, ``F`` uniformly random nodes are marked
failed right before Phase II, and the plot shows — as a function of ``F`` —
the ratio of *additional* lost original messages (messages of healthy nodes
that reach no tree root) to ``F``.  The qualitative finding: the ratio is
essentially zero for small ``F`` and grows once a substantial fraction of the
network fails.

The reproduction uses a smaller graph; failure counts are expressed as
fractions of ``n`` so the x-axis is comparable across scales.  Declared as a
scenario spec; ``run_figure2`` is a thin wrapper over the registry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import RobustnessConfig
from .runner import ExperimentResult, robustness_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_figure2", "FIGURE2_COLUMNS", "FIGURE2", "robustness_configurations"]

FIGURE2_COLUMNS = (
    "n",
    "failed",
    "failed_fraction",
    "additional_lost",
    "loss_ratio",
    "loss_ratio_std",
    "repetitions",
)


def robustness_configurations(
    config: RobustnessConfig,
) -> List[Tuple[Tuple[int, int], Dict]]:
    """Build the (size, failed-count) sweep configurations."""
    spec = GraphSpec(
        kind="erdos_renyi",
        n=config.size,
        params={
            "p": paper_edge_probability(config.size, config.density_exponent),
            "require_connected": True,
        },
    )
    configurations = []
    for failed in config.failed_counts():
        configurations.append(
            (
                (config.size, failed),
                {
                    "graph_spec": spec.as_dict(),
                    "failed": failed,
                    "num_trees": config.num_trees,
                    "leader": 0,
                },
            )
        )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: RobustnessConfig,
) -> None:
    for row in rows:
        row["failed_fraction"] = row["failed"] / row["n"]


FIGURE2 = register(
    ScenarioSpec(
        name="figure2",
        result_name="figure2",
        description=(
            "Figure 2: ratio of additional lost healthy messages to the number "
            "of failed nodes F (memory model, 3 trees, failures before Phase II)"
        ),
        task=robustness_task,
        grid=robustness_configurations,
        default_config=RobustnessConfig.quick,
        cli_config=lambda seed: RobustnessConfig(
            size=1024, repetitions=2, seed=20150526 if seed is None else seed
        ),
        smoke_config=lambda seed: RobustnessConfig(
            size=128, failed_fractions=(0.0, 0.25), repetitions=1, seed=20150526 if seed is None else seed
        ),
        group_by=("n", "failed"),
        metrics=("additional_lost", "loss_ratio", "messages_per_node"),
        finalize=_finalize,
        metadata=lambda config: {
            "size": config.size,
            "num_trees": config.num_trees,
            "failed_fractions": list(config.failed_fractions),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=FIGURE2_COLUMNS,
        render={"x": "failed", "y": "loss_ratio", "group_by": None, "log_x": False},
        legacy_entry="run_figure2",
    )
)


def run_figure2(config: Optional[RobustnessConfig] = None) -> ExperimentResult:
    """Reproduce Figure 2 (additional lost messages / F vs F, memory model)."""
    return run_scenario(FIGURE2, config=config or RobustnessConfig.quick())
