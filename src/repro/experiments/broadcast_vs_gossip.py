"""Experiment E8 (ablation) — the broadcast/gossip density separation.

Background of the paper (Section 1.1): for single-message *broadcasting* the
``O(n log log n)`` message bound achievable on complete graphs (Karp et al.)
cannot be achieved on sparse random graphs, whereas the paper shows that for
*gossiping* sparse random graphs are as good as complete graphs.  This
ablation makes the contrast measurable:

* age-quenched push–pull broadcasting on the complete graph vs on
  ``G(n, log²n/n)`` — per-node packets grow noticeably faster on the sparse
  graph (``Theta(log n)`` envelope vs ``Theta(log log n)``), while
* the memory-model gossiping cost stays flat on both topologies.

Declared as a scenario spec; ``run_broadcast_ablation`` is a thin wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..analysis.sweep import SweepTask
from ..broadcast.age_based import AgeBasedBroadcast
from ..engine.metrics import MessageAccounting
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec, make_graph
from .config import BroadcastAblationConfig
from .runner import ExperimentResult, make_protocol
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = [
    "run_broadcast_ablation",
    "broadcast_task",
    "BROADCAST_COLUMNS",
    "BROADCAST_ABLATION",
]

BROADCAST_COLUMNS = (
    "n",
    "topology",
    "task",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "repetitions",
)


def broadcast_task(task: SweepTask) -> Dict[str, Any]:
    """Run one broadcasting or gossiping measurement for the ablation.

    Expected task params: ``graph_spec`` (dict), ``topology`` (label),
    ``task`` (``"broadcast"`` or ``"gossip-memory"``).
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    graph = make_graph(spec, rng=task.seed)
    kind = params["task"]
    if kind == "broadcast":
        result = AgeBasedBroadcast().run(graph, source=0, rng=task.seed + 1)
        messages = result.messages_per_node(MessageAccounting.PACKETS)
        rounds = result.rounds
        completed = result.completed
    elif kind == "gossip-memory":
        protocol = make_protocol("memory", protocol_options={"leader": 0})
        outcome = protocol.run(graph, rng=task.seed + 1)
        messages = outcome.messages_per_node(MessageAccounting.PACKETS)
        rounds = outcome.rounds
        completed = outcome.completed
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown ablation task {kind!r}")
    return {
        "n": spec.n,
        "topology": params["topology"],
        "task": kind,
        "messages_per_node": messages,
        "rounds": rounds,
        "completed": completed,
    }


def _configurations(
    config: BroadcastAblationConfig,
) -> List[Tuple[Tuple[int, str, str], Dict]]:
    configurations: List[Tuple[Tuple[int, str, str], Dict]] = []
    for n in config.sizes:
        sparse = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        complete = GraphSpec(kind="complete", n=n)
        for topology, spec in (("sparse", sparse), ("complete", complete)):
            for kind in ("broadcast", "gossip-memory"):
                configurations.append(
                    (
                        (n, topology, kind),
                        {"graph_spec": spec.as_dict(), "topology": topology, "task": kind},
                    )
                )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: BroadcastAblationConfig,
) -> Dict[str, Any]:
    # Separation summary: growth of the per-node broadcast cost from the
    # smallest to the largest n, per topology (sparse should grow faster).
    growth: Dict[str, float] = {}
    for topology in ("sparse", "complete"):
        series = sorted(
            (row["n"], row["messages_per_node"])
            for row in rows
            if row["topology"] == topology and row["task"] == "broadcast"
        )
        if len(series) >= 2 and series[0][1] > 0:
            growth[topology] = series[-1][1] / series[0][1]
    return {"broadcast_cost_growth": growth}


BROADCAST_ABLATION = register(
    ScenarioSpec(
        name="broadcast",
        result_name="broadcast_ablation",
        description=(
            "Broadcast-vs-gossip ablation: per-node packets of age-quenched "
            "push-pull broadcasting and memory-model gossiping on sparse vs "
            "complete graphs"
        ),
        task=broadcast_task,
        grid=_configurations,
        default_config=BroadcastAblationConfig.quick,
        cli_config=lambda seed: BroadcastAblationConfig(
            sizes=(256, 512, 1024), repetitions=2, seed=20150529 if seed is None else seed
        ),
        smoke_config=lambda seed: BroadcastAblationConfig(
            sizes=(96, 128), repetitions=1, seed=20150529 if seed is None else seed
        ),
        group_by=("n", "topology", "task"),
        metrics=("messages_per_node", "rounds"),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=BROADCAST_COLUMNS,
        render={"x": "n", "y": "messages_per_node", "group_by": "task", "log_x": True},
        legacy_entry="run_broadcast_ablation",
    )
)


def run_broadcast_ablation(
    config: Optional[BroadcastAblationConfig] = None,
) -> ExperimentResult:
    """Run the broadcast-vs-gossip density-separation ablation."""
    return run_scenario(BROADCAST_ABLATION, config=config or BroadcastAblationConfig.quick())
