"""Combined reproduction report builder.

Collects several :class:`~repro.experiments.runner.ExperimentResult` objects
into one Markdown document: per experiment a short description, the aggregated
rows as a Markdown table, an optional ASCII plot, and the sweep metadata.  The
``scripts/generate_results.py`` helper uses it to leave a single human-readable
`results/REPORT.md` next to the raw JSON/CSV rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..analysis.ascii_plot import plot_experiment_rows
from ..io.results import save_json, to_jsonable
from ..io.tables import format_value
from .runner import ExperimentResult

__all__ = [
    "markdown_table",
    "experiment_section",
    "scenario_plot",
    "scenario_columns",
    "store_overview",
    "build_report",
    "write_report",
]


def _spec_for(result: ExperimentResult):
    """Look up the scenario spec that produced ``result`` (or ``None``)."""
    from .scenarios import all_scenarios

    for spec in all_scenarios():
        if spec.result_name == result.name:
            return spec
    return None


def scenario_columns(result: ExperimentResult) -> Optional[Sequence[str]]:
    """Preferred column order declared on the result's scenario spec."""
    spec = _spec_for(result)
    return list(spec.columns) if spec is not None and spec.columns else None


def scenario_plot(result: ExperimentResult) -> Optional[str]:
    """Render the ASCII plot declared by the result's scenario spec."""
    spec = _spec_for(result)
    if spec is None or not spec.render or not result.rows:
        return None
    hints = dict(spec.render)
    try:
        return plot_experiment_rows(
            result.rows,
            x=hints["x"],
            y=hints["y"],
            group_by=hints.get("group_by"),
            log_x=bool(hints.get("log_x", False)),
            title=result.description,
        )
    except (KeyError, ValueError, TypeError):
        return None


def markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_digits: int = 3,
) -> str:
    """Render record dicts as a GitHub-flavoured Markdown table."""
    if not rows:
        return "*(no rows)*"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    separator = "|" + "|".join(" --- " for _ in columns) + "|"
    body = [
        "| " + " | ".join(format_value(row.get(c), float_digits) for c in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def experiment_section(
    result: ExperimentResult,
    *,
    columns: Optional[Sequence[str]] = None,
    plot: Optional[str] = None,
    notes: str = "",
) -> str:
    """One Markdown section for a single experiment result."""
    lines: List[str] = [f"## {result.name}", "", result.description, ""]
    lines.append(markdown_table(result.rows, columns))
    lines.append("")
    if plot:
        lines.extend(["```text", plot, "```", ""])
    if notes:
        lines.extend([notes, ""])
    interesting_metadata = {
        key: value
        for key, value in result.metadata.items()
        if isinstance(value, (int, float, str, bool, list, dict)) and key != "seed"
    }
    if interesting_metadata:
        lines.append("<details><summary>configuration</summary>")
        lines.append("")
        lines.append("```json")
        import json

        lines.append(json.dumps(to_jsonable(interesting_metadata), indent=2, sort_keys=True))
        lines.append("```")
        lines.append("</details>")
        lines.append("")
    return "\n".join(lines)


def store_overview(store) -> str:
    """Markdown section summarising a result store's scenario files.

    Served from the store's SQLite query index when enabled (no JSONL
    re-scan); falls back to :meth:`ResultStore.index` otherwise.
    """
    index = store.query_index
    if index is not None:
        rows = [
            {"scenario": name, **index.counts(name)}
            for name in index.scenario_names()
        ]
        source = "SQLite query index"
    else:
        rows = [
            {
                "scenario": name,
                "records": summary["records"],
                "configurations": summary["configurations"],
                "failures": summary["failures"],
            }
            for name, summary in store.index().items()
        ]
        source = "full JSONL scan"
    lines = [
        "## Result store",
        "",
        f"Per-run records persisted under `{store.directory}` "
        f"(counts served by the {source}; see `docs/caching.md`).",
        "",
        markdown_table(rows),
        "",
    ]
    return "\n".join(lines)


def build_report(
    results: Sequence[ExperimentResult],
    *,
    title: str = "Reproduction report",
    preamble: str = "",
    columns: Optional[Mapping[str, Sequence[str]]] = None,
    plots: Optional[Mapping[str, str]] = None,
    auto_plots: bool = False,
    store=None,
) -> str:
    """Assemble the full Markdown report from experiment results.

    Parameters
    ----------
    results:
        Experiment results in the order they should appear.
    title / preamble:
        Document heading and optional introduction paragraph.
    columns:
        Optional per-experiment column selections, keyed by experiment name;
        defaults to the column order declared on the scenario spec.
    plots:
        Optional per-experiment pre-rendered ASCII plots, keyed by name.
    auto_plots:
        Render each experiment's ASCII plot from its scenario spec's render
        hints when no explicit plot is supplied.
    store:
        Optional :class:`~repro.io.store.ResultStore`; when given, a
        :func:`store_overview` section (index-served counts) is appended.
    """
    lines: List[str] = [f"# {title}", ""]
    if preamble:
        lines.extend([preamble, ""])
    for result in results:
        plot = (plots or {}).get(result.name)
        if plot is None and auto_plots:
            plot = scenario_plot(result)
        selected = (columns or {}).get(result.name)
        if selected is None:
            selected = scenario_columns(result)
        lines.append(experiment_section(result, columns=selected, plot=plot))
    if store is not None:
        lines.append(store_overview(store))
    return "\n".join(lines)


def write_report(
    results: Sequence[ExperimentResult],
    path: Union[str, Path],
    **kwargs,
) -> Path:
    """Build the report and write it to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(results, **kwargs))
    return path
