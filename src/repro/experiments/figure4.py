"""Experiment E2 — Figure 4: detailed view of Algorithm 1's message complexity.

Figure 4 of the paper zooms into the fast-gossiping series of Figure 1 on a
finer grid of graph sizes.  Two effects are visible: the series jumps whenever
a ceil'd phase length increases by one step, and *between* jumps the messages
per node decrease slightly because the per-round random-walk probability
``1 / log n`` shrinks while the phase lengths stay constant.  We reproduce the
series on a finer (but smaller) grid and report, for every consecutive pair of
sizes with identical resolved schedules, whether the cost indeed decreased.

Declared as a scenario spec; ``run_figure4`` is a thin wrapper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.parameters import tuned_fast_gossiping
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import SizeSweepConfig
from .runner import ExperimentResult, gossip_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_figure4", "FIGURE4_COLUMNS", "FIGURE4", "default_figure4_config"]

FIGURE4_COLUMNS = (
    "n",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "walk_probability",
    "schedule_signature",
    "repetitions",
)


def default_figure4_config() -> SizeSweepConfig:
    """A finer size grid restricted to the fast-gossiping protocol."""
    return SizeSweepConfig(
        sizes=(256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096),
        repetitions=3,
        protocols=("fast-gossiping",),
    )


def _configurations(config: SizeSweepConfig) -> List[Tuple[Tuple[int, str], Dict]]:
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        configurations.append(
            (
                (n, "fast-gossiping"),
                {"graph_spec": spec.as_dict(), "protocol": "fast-gossiping"},
            )
        )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: SizeSweepConfig,
) -> Dict[str, Any]:
    """Annotate rows with the resolved schedule and collect plateau deltas."""
    params = tuned_fast_gossiping()
    for row in rows:
        schedule = params.resolve(int(row["n"]))
        row["walk_probability"] = schedule.walk_probability
        row["schedule_signature"] = (
            f"P1={schedule.distribution_steps}/rounds={schedule.rounds}/"
            f"walk={schedule.walk_steps}/bc={schedule.broadcast_steps}"
        )

    # Within-plateau decrease check: for consecutive sizes with an identical
    # schedule, does the per-node cost decrease (as in the paper's Figure 4)?
    decreases = []
    for first, second in zip(rows, rows[1:]):
        if first["schedule_signature"] == second["schedule_signature"]:
            decreases.append(
                {
                    "from_n": first["n"],
                    "to_n": second["n"],
                    "delta_messages_per_node": second["messages_per_node"]
                    - first["messages_per_node"],
                }
            )
    return {"within_plateau_deltas": decreases}


FIGURE4 = register(
    ScenarioSpec(
        name="figure4",
        result_name="figure4",
        description=(
            "Figure 4: fast-gossiping messages per node on a fine size grid, "
            "showing schedule plateaus and the within-plateau decrease"
        ),
        task=gossip_task,
        grid=_configurations,
        default_config=default_figure4_config,
        cli_config=lambda seed: (
            default_figure4_config()
            if seed is None
            else replace(default_figure4_config(), seed=seed)
        ),
        smoke_config=lambda seed: SizeSweepConfig(
            sizes=(96, 128, 192),
            repetitions=1,
            protocols=("fast-gossiping",),
            seed=20150525 if seed is None else seed,
        ),
        group_by=("n",),
        metrics=("messages_per_node", "rounds"),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=FIGURE4_COLUMNS,
        render={"x": "n", "y": "messages_per_node", "group_by": None, "log_x": True},
        legacy_entry="run_figure4",
    )
)


def run_figure4(config: Optional[SizeSweepConfig] = None) -> ExperimentResult:
    """Reproduce Figure 4 (fast-gossiping messages per node, fine size grid)."""
    return run_scenario(FIGURE4, config=config or default_figure4_config())
