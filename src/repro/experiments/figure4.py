"""Experiment E2 — Figure 4: detailed view of Algorithm 1's message complexity.

Figure 4 of the paper zooms into the fast-gossiping series of Figure 1 on a
finer grid of graph sizes.  Two effects are visible: the series jumps whenever
a ceil'd phase length increases by one step, and *between* jumps the messages
per node decrease slightly because the per-round random-walk probability
``1 / log n`` shrinks while the phase lengths stay constant.  We reproduce the
series on a finer (but smaller) grid and report, for every consecutive pair of
sizes with identical resolved schedules, whether the cost indeed decreased.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.parameters import tuned_fast_gossiping
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import SizeSweepConfig
from .runner import ExperimentResult, aggregate_records, run_gossip_sweep

__all__ = ["run_figure4", "FIGURE4_COLUMNS", "default_figure4_config"]

FIGURE4_COLUMNS = (
    "n",
    "messages_per_node",
    "messages_per_node_std",
    "rounds",
    "walk_probability",
    "schedule_signature",
    "repetitions",
)


def default_figure4_config() -> SizeSweepConfig:
    """A finer size grid restricted to the fast-gossiping protocol."""
    return SizeSweepConfig(
        sizes=(256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096),
        repetitions=3,
        protocols=("fast-gossiping",),
    )


def run_figure4(config: Optional[SizeSweepConfig] = None) -> ExperimentResult:
    """Reproduce Figure 4 (fast-gossiping messages per node, fine size grid)."""
    config = config or default_figure4_config()
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        configurations.append(
            (
                (n, "fast-gossiping"),
                {"graph_spec": spec.as_dict(), "protocol": "fast-gossiping"},
            )
        )
    records = run_gossip_sweep(
        configurations,
        repetitions=config.repetitions,
        seed=config.seed,
        n_jobs=config.n_jobs,
    )
    rows = aggregate_records(
        records, group_by=("n",), metrics=("messages_per_node", "rounds")
    )
    params = tuned_fast_gossiping()
    for row in rows:
        schedule = params.resolve(int(row["n"]))
        row["walk_probability"] = schedule.walk_probability
        row["schedule_signature"] = (
            f"P1={schedule.distribution_steps}/rounds={schedule.rounds}/"
            f"walk={schedule.walk_steps}/bc={schedule.broadcast_steps}"
        )

    # Within-plateau decrease check: for consecutive sizes with an identical
    # schedule, does the per-node cost decrease (as in the paper's Figure 4)?
    decreases = []
    for first, second in zip(rows, rows[1:]):
        if first["schedule_signature"] == second["schedule_signature"]:
            decreases.append(
                {
                    "from_n": first["n"],
                    "to_n": second["n"],
                    "delta_messages_per_node": second["messages_per_node"]
                    - first["messages_per_node"],
                }
            )

    return ExperimentResult(
        name="figure4",
        description=(
            "Figure 4: fast-gossiping messages per node on a fine size grid, "
            "showing schedule plateaus and the within-plateau decrease"
        ),
        rows=rows,
        raw_records=records,
        metadata={
            "sizes": list(config.sizes),
            "repetitions": config.repetitions,
            "seed": config.seed,
            "within_plateau_deltas": decreases,
        },
    )
