"""Experiment harness: a declarative scenario registry plus legacy wrappers.

Every paper table/figure and every extension is registered as a
:class:`~repro.experiments.scenarios.ScenarioSpec` — grid, task function,
aggregation recipe and render hints — and executed by
:func:`~repro.experiments.scenarios.run_scenario`, optionally against the
resumable on-disk result store (:class:`repro.io.store.ResultStore`).  The
historical ``run_*`` functions remain as thin wrappers over the registry;
each returns an :class:`~repro.experiments.runner.ExperimentResult` whose
rows correspond to the points of the paper's plot (or the rows of its
table); call ``result.to_table()`` for a printable report or
``result.save(dir)`` to persist the rows as JSON/CSV.
"""

from .ablation_parameters import run_parameter_ablation
from .ablation_redundancy import run_redundancy_ablation
from .broadcast_vs_gossip import run_broadcast_ablation
from .churn import CHURN_COLUMNS, run_churn
from .config import (
    BroadcastAblationConfig,
    ChurnConfig,
    DensitySweepConfig,
    LeaderElectionConfig,
    ParameterAblationConfig,
    PushSumConfig,
    RobustnessConfig,
    RobustnessDetailConfig,
    ScaleConfig,
    SizeSweepConfig,
)
from .density_sweep import run_density_sweep
from .figure1 import FIGURE1_COLUMNS, run_figure1
from .figure2 import FIGURE2_COLUMNS, run_figure2
from .figure3 import FIGURE3_COLUMNS, Figure3Config, run_figure3
from .figure4 import FIGURE4_COLUMNS, default_figure4_config, run_figure4
from .figure5 import figure5_columns, run_figure5
from .graph_models import run_graph_model_comparison
from .leader_election_cost import run_leader_election_cost
from .report import (
    build_report,
    experiment_section,
    markdown_table,
    scenario_plot,
    write_report,
)
from .push_sum import PUSHSUM_COLUMNS, run_pushsum
from .runner import ExperimentResult, aggregate_records, make_protocol
from .scale import SCALE_COLUMNS, run_scale
from .scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register,
    resolve_config,
    run_scenario,
    scenario_names,
)
from .table1 import TABLE1_COLUMNS, run_table1

__all__ = [
    "run_parameter_ablation",
    "run_redundancy_ablation",
    "run_broadcast_ablation",
    "BroadcastAblationConfig",
    "ChurnConfig",
    "CHURN_COLUMNS",
    "run_churn",
    "DensitySweepConfig",
    "LeaderElectionConfig",
    "ParameterAblationConfig",
    "PushSumConfig",
    "PUSHSUM_COLUMNS",
    "run_pushsum",
    "RobustnessConfig",
    "RobustnessDetailConfig",
    "ScaleConfig",
    "SizeSweepConfig",
    "run_density_sweep",
    "FIGURE1_COLUMNS",
    "run_figure1",
    "FIGURE2_COLUMNS",
    "run_figure2",
    "FIGURE3_COLUMNS",
    "Figure3Config",
    "run_figure3",
    "FIGURE4_COLUMNS",
    "default_figure4_config",
    "run_figure4",
    "figure5_columns",
    "run_figure5",
    "run_graph_model_comparison",
    "run_leader_election_cost",
    "SCALE_COLUMNS",
    "run_scale",
    "build_report",
    "experiment_section",
    "markdown_table",
    "scenario_plot",
    "write_report",
    "ExperimentResult",
    "aggregate_records",
    "make_protocol",
    "ScenarioSpec",
    "all_scenarios",
    "get_scenario",
    "register",
    "resolve_config",
    "run_scenario",
    "scenario_names",
    "TABLE1_COLUMNS",
    "run_table1",
]
