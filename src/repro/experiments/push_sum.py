"""Extension experiment — push-sum averaging under both execution clocks.

The aggregation workload the event-clock engine exists for
(:mod:`repro.core.push_sum`): every node estimates the network average from
``(s, w)`` pairs halved toward random neighbours.  The sweep compares the
synchronous clock against the continuous-time event clock per size — the
simulation seed derives from the size alone, so both clocks average the same
values on the same graph — and records the per-run convergence invariants:

* ``mass_error`` — relative drift of ``sum(s)`` (zero up to float rounding),
* ``spread_monotone`` — whether ``max(s/w) - min(s/w)`` ever increased
  beyond float rounding (it must not),
* ``variance_final`` against ``variance_initial`` — the decay the protocol
  is run for.

The finalize hook folds these into sweep-level flags (``mass_conserved``,
``spread_monotone``), so a broken clock or kernel shows up as a failed
scenario, not just a noisy plot.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import PushSumConfig
from .runner import ExperimentResult, push_sum_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_pushsum", "PUSHSUM_COLUMNS", "PUSHSUM"]

#: Columns of the aggregated push-sum rows.
PUSHSUM_COLUMNS = (
    "n",
    "clock",
    "rounds",
    "events",
    "sim_time",
    "messages_per_node",
    "mass_error",
    "variance_final",
    "spread_final",
    "converged",
    "repetitions",
)


def _configurations(config: PushSumConfig) -> List[Tuple[Tuple[int, str], Dict]]:
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for clock in config.clocks:
            configurations.append(
                (
                    (n, clock),
                    {
                        "graph_spec": spec.as_dict(),
                        "clock": clock,
                        "tolerance": config.tolerance,
                        "base_seed": config.seed,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: PushSumConfig,
) -> Dict[str, Any]:
    """Surface the exact invariants as sweep-level pass/fail flags."""
    for row in rows:
        members = [
            r
            for r in records
            if r["n"] == row["n"] and r["clock"] == row["clock"]
        ]
        row["converged"] = all(r["converged"] for r in members)
    return {
        "mass_conserved": all(r["mass_error"] <= 1e-9 for r in records),
        "spread_monotone": all(r["spread_monotone"] for r in records),
        "variance_decayed": all(
            r["variance_final"] <= r["variance_initial"] for r in records
        ),
    }


PUSHSUM = register(
    ScenarioSpec(
        name="pushsum",
        result_name="pushsum",
        description=(
            "Push-sum averaging under the synchronous and event clocks: "
            "convergence cost per size with mass-conservation and "
            "monotone-spread invariants checked per run"
        ),
        task=push_sum_task,
        grid=_configurations,
        default_config=PushSumConfig.quick,
        cli_config=lambda seed: PushSumConfig(
            seed=20150532 if seed is None else seed
        ),
        smoke_config=lambda seed: PushSumConfig(
            sizes=(96, 128),
            repetitions=1,
            seed=20150532 if seed is None else seed,
        ),
        group_by=("n", "clock"),
        metrics=(
            "rounds",
            "events",
            "sim_time",
            "messages_per_node",
            "mass_error",
            "variance_final",
            "spread_final",
        ),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "clocks": list(config.clocks),
            "tolerance": config.tolerance,
            "repetitions": config.repetitions,
            "seed": config.seed,
            "density_exponent": config.density_exponent,
        },
        columns=PUSHSUM_COLUMNS,
        render={
            "x": "n",
            "y": "messages_per_node",
            "group_by": "clock",
            "log_x": True,
        },
        legacy_entry="run_pushsum",
    )
)


def run_pushsum(config: Optional[PushSumConfig] = None) -> ExperimentResult:
    """Run the push-sum averaging sweep."""
    return run_scenario(PUSHSUM, config=config or PushSumConfig.quick())
