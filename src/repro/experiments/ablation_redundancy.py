"""Experiment E11 (ablation) — gather redundancy of the memory model.

Algorithm 2 stores *every* neighbour a node contacted during Phase I and
re-contacts all of them during the gathering phase, which gives each original
message several disjoint upward paths to the leader.  A stricter reading keeps
only the contact that first informed each node (a spanning tree).  This
ablation measures the trade-off between the two interpretations under the
robustness experiment of Figure 2: replaying all contacts costs slightly more
packets but loses far fewer messages when nodes crash; the strict tree loses
messages at ratios much closer to the magnitudes the paper reports for its
large graphs.

Declared as a scenario spec; ``run_redundancy_ablation`` is a thin wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..analysis.sweep import SweepTask
from ..core.memory_gossiping import MemoryGossiping
from ..core.parameters import tuned_memory_gossiping
from ..engine.failures import NO_FAILURES, sample_uniform_failures
from ..engine.metrics import MessageAccounting
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec, make_graph
from .config import RobustnessConfig
from .runner import ExperimentResult
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = [
    "run_redundancy_ablation",
    "redundancy_task",
    "REDUNDANCY_COLUMNS",
    "REDUNDANCY_ABLATION",
]

REDUNDANCY_COLUMNS = (
    "gather_contacts",
    "failed",
    "failed_fraction",
    "additional_lost",
    "loss_ratio",
    "messages_per_node",
    "repetitions",
)


def redundancy_task(task: SweepTask) -> Dict[str, Any]:
    """Run one robustness measurement with a chosen gather-contacts mode.

    Expected task params: ``graph_spec`` (dict), ``failed`` (int),
    ``num_trees`` (int), ``gather_contacts`` (``"all"`` or ``"first"``),
    optional ``leader`` (int).
    """
    params = task.params
    spec = GraphSpec.from_dict(params["graph_spec"])
    graph = make_graph(spec, rng=task.seed)
    leader = int(params.get("leader", 0))
    failed_count = int(params["failed"])
    protocol_params = tuned_memory_gossiping().with_overrides(
        num_trees=int(params.get("num_trees", 3)),
        gather_contacts=str(params["gather_contacts"]),
    )
    protocol = MemoryGossiping(protocol_params, leader=leader, gather_only=True)
    failures = (
        sample_uniform_failures(spec.n, failed_count, rng=task.seed + 7, protect=[leader])
        if failed_count
        else NO_FAILURES
    )
    result = protocol.run(graph, rng=task.seed + 1, failures=failures)
    lost = int(result.extras["lost_messages"])
    return {
        "n": spec.n,
        "gather_contacts": params["gather_contacts"],
        "failed": failed_count,
        "failed_fraction": failed_count / spec.n,
        "additional_lost": lost,
        "loss_ratio": (lost / failed_count) if failed_count else 0.0,
        "messages_per_node": result.messages_per_node(MessageAccounting.PACKETS),
    }


def _configurations(config: RobustnessConfig) -> List[Tuple[Tuple[str, int], Dict]]:
    spec = GraphSpec(
        kind="erdos_renyi",
        n=config.size,
        params={
            "p": paper_edge_probability(config.size, config.density_exponent),
            "require_connected": True,
        },
    )
    configurations: List[Tuple[Tuple[str, int], Dict]] = []
    for mode in ("all", "first"):
        for failed in config.failed_counts():
            configurations.append(
                (
                    (mode, failed),
                    {
                        "graph_spec": spec.as_dict(),
                        "failed": failed,
                        "num_trees": config.num_trees,
                        "gather_contacts": mode,
                        "leader": 0,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: RobustnessConfig,
) -> Dict[str, Any]:
    for row in rows:
        row["failed_fraction"] = row["failed"] / config.size

    # Summary: how much extra loss the strict tree incurs at the largest F.
    largest = max(config.failed_counts())
    ratios = {
        row["gather_contacts"]: row["loss_ratio"]
        for row in rows
        if row["failed"] == largest
    }
    return {"loss_ratio_at_largest_f": ratios}


REDUNDANCY_ABLATION = register(
    ScenarioSpec(
        name="redundancy",
        result_name="ablation_redundancy",
        description=(
            "Gather-redundancy ablation: robustness (additional lost messages / F) "
            "when replaying all Phase I contacts vs only first-informing contacts"
        ),
        task=redundancy_task,
        grid=_configurations,
        default_config=RobustnessConfig.quick,
        cli_config=lambda seed: RobustnessConfig(
            size=1024,
            failed_fractions=(0.0, 0.1, 0.3),
            repetitions=2,
            seed=20150532 if seed is None else seed,
        ),
        smoke_config=lambda seed: RobustnessConfig(
            size=128, failed_fractions=(0.0, 0.3), repetitions=1, seed=20150532 if seed is None else seed
        ),
        group_by=("gather_contacts", "failed"),
        metrics=("additional_lost", "loss_ratio", "messages_per_node"),
        finalize=_finalize,
        metadata=lambda config: {
            "size": config.size,
            "num_trees": config.num_trees,
            "failed_fractions": list(config.failed_fractions),
            "repetitions": config.repetitions,
            "seed": config.seed,
        },
        columns=REDUNDANCY_COLUMNS,
        render={"x": "failed", "y": "loss_ratio", "group_by": "gather_contacts", "log_x": False},
        legacy_entry="run_redundancy_ablation",
    )
)


def run_redundancy_ablation(
    config: Optional[RobustnessConfig] = None,
) -> ExperimentResult:
    """Compare the 'all contacts' and 'first contact' gather structures."""
    return run_scenario(REDUNDANCY_ABLATION, config=config or RobustnessConfig.quick())
