"""Extension experiment — storage-layout scaling beyond the dense ceiling.

The paper simulates graphs up to n = 10⁶ on half-terabyte machines; the
reproduction's dense knowledge matrix walls off well before that (the matrix
alone is ``n² / 8`` bytes).  This scenario sweeps one protocol across sizes
under each pluggable knowledge-storage layout
(:mod:`repro.engine.layouts`: ``dense`` / ``paged`` / ``sparse``) and records
rounds, per-node message cost and the resident storage footprint per layout.

Because trajectories are bit-identical across layouts, the rounds and message
columns must agree within each size — the sweep doubles as a large-n
cross-layout consistency check, while the ``storage_mb`` column shows what
each layout pays for it.  ``scale --smoke`` keeps CI-friendly sizes;
``ScaleConfig.paper_scale()`` moves to the n >= 100k regime the paged and
sparse layouts exist for.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.sweep import SweepTask, stable_key_hash
from ..engine.rng import derive_seed
from ..graphs.erdos_renyi import paper_edge_probability
from ..graphs.generators import GraphSpec
from .config import ScaleConfig
from .runner import ExperimentResult, gossip_task
from .scenarios import ScenarioSpec, register, run_scenario

__all__ = ["run_scale", "SCALE_COLUMNS", "SCALE"]

#: Columns of the aggregated scale rows.
SCALE_COLUMNS = (
    "n",
    "knowledge_layout",
    "rounds",
    "messages_per_node",
    "storage_mb",
    "completed",
    "repetitions",
)


def scale_task(task: SweepTask) -> Dict[str, Any]:
    """``gossip_task`` with a layout-independent simulation seed.

    Sweep seeds normally derive from the configuration key, which here
    includes the layout — that would hand every layout a different graph and
    call sequence, defeating the cross-layout comparison.  Re-derive the seed
    from the size alone so all layouts of one size run the *same* trajectory
    (bit-identical by the storage contract) and only memory/speed differ.
    """
    seed = derive_seed(
        task.params["base_seed"],
        stable_key_hash(("scale", task.params["graph_spec"]["n"])),
        task.repetition,
    )
    return gossip_task(replace(task, seed=seed))


def _configurations(config: ScaleConfig) -> List[Tuple[Tuple[int, str], Dict]]:
    configurations = []
    for n in config.sizes:
        spec = GraphSpec(
            kind="erdos_renyi",
            n=n,
            params={
                "p": paper_edge_probability(n, config.density_exponent),
                "require_connected": True,
            },
        )
        for layout in config.layouts:
            options: Dict[str, object] = {}
            if config.protocol == "memory":
                options = {"leader": 0}
            configurations.append(
                (
                    (n, layout),
                    {
                        "graph_spec": spec.as_dict(),
                        "protocol": config.protocol,
                        "protocol_options": options,
                        "knowledge_layout": layout,
                        "base_seed": config.seed,
                    },
                )
            )
    return configurations


def _finalize(
    rows: List[Dict[str, Any]],
    records: List[Dict[str, Any]],
    config: ScaleConfig,
) -> Dict[str, Any]:
    """Assert the cross-layout invariance the storage contract promises."""
    consistent = True
    for n in {row["n"] for row in rows}:
        group = [row for row in rows if row["n"] == n]
        if len({(row["rounds"], row["messages_per_node"]) for row in group}) > 1:
            consistent = False
    for row in rows:
        row["completed"] = all(
            r["completed"]
            for r in records
            if r["n"] == row["n"]
            and r["knowledge_layout"] == row["knowledge_layout"]
        )
    return {"layouts_consistent": consistent}


SCALE = register(
    ScenarioSpec(
        name="scale",
        result_name="scale",
        description=(
            "Storage-layout scaling: one protocol per size under the dense, "
            "paged and lifetime-sparse knowledge layouts — identical "
            "trajectories, different memory footprints"
        ),
        task=scale_task,
        grid=_configurations,
        default_config=ScaleConfig.quick,
        cli_config=lambda seed: ScaleConfig(
            seed=20150525 if seed is None else seed
        ),
        smoke_config=lambda seed: ScaleConfig(
            sizes=(96, 128),
            repetitions=1,
            seed=20150525 if seed is None else seed,
        ),
        group_by=("n", "knowledge_layout"),
        metrics=("rounds", "messages_per_node", "storage_mb"),
        finalize=_finalize,
        metadata=lambda config: {
            "sizes": list(config.sizes),
            "layouts": list(config.layouts),
            "protocol": config.protocol,
            "repetitions": config.repetitions,
            "seed": config.seed,
            "density_exponent": config.density_exponent,
        },
        columns=SCALE_COLUMNS,
        render={
            "x": "n",
            "y": "storage_mb",
            "group_by": "knowledge_layout",
            "log_x": True,
        },
        legacy_entry="run_scale",
    )
)


def run_scale(config: Optional[ScaleConfig] = None) -> ExperimentResult:
    """Run the storage-layout scale sweep."""
    return run_scenario(SCALE, config=config or ScaleConfig.quick())
