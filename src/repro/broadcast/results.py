"""Result record for single-message broadcasting baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..engine.knowledge import SingleMessageState
from ..engine.metrics import MessageAccounting, TransmissionLedger
from ..engine.trace import SpreadingTrace

__all__ = ["BroadcastResult"]


@dataclass
class BroadcastResult:
    """Outcome of one broadcasting run.

    Attributes
    ----------
    protocol:
        Name of the broadcasting algorithm.
    n_nodes:
        Network size.
    source:
        The initially informed node.
    completed:
        Whether every node got the rumour.
    rounds:
        Number of synchronous steps executed.
    ledger:
        Communication-cost accounting.
    state:
        Final informed/uninformed state (includes per-node informing times).
    trace:
        Optional per-round progress trace.
    extras:
        Algorithm-specific extra outputs.
    """

    protocol: str
    n_nodes: int
    source: int
    completed: bool
    rounds: int
    ledger: TransmissionLedger
    state: SingleMessageState
    trace: Optional[SpreadingTrace] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def messages_per_node(
        self, accounting: MessageAccounting = MessageAccounting.PACKETS
    ) -> float:
        """Average communication cost per node under the chosen accounting."""
        return self.ledger.average_per_node(accounting)

    def total_messages(
        self, accounting: MessageAccounting = MessageAccounting.PACKETS
    ) -> int:
        """Total communication cost under the chosen accounting."""
        return self.ledger.total(accounting)

    def summary(self) -> Dict[str, Any]:
        """Serializable summary used by the experiment harness."""
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "source": self.source,
            "completed": self.completed,
            "rounds": self.rounds,
            "messages_per_node": self.messages_per_node(),
            "informed": self.state.num_informed(),
        }
