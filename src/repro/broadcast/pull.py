"""Single-message pull broadcasting.

In every step every *uninformed* node opens a channel to a uniformly random
neighbour; if the callee is informed it answers with the rumour (a pull
transmission).  Karp et al. observed that pull is inferior to push while fewer
than half the nodes are informed and dramatically better afterwards — the
observation behind their push–pull algorithm and behind the pull long-steps of
the paper's memory model.
"""

from __future__ import annotations

import numpy as np

from ..engine.knowledge import SingleMessageState
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .results import BroadcastResult

__all__ = ["PullBroadcast"]


class PullBroadcast:
    """Pull-only broadcasting of a single rumour.

    Parameters
    ----------
    max_rounds_factor:
        Abort after ``max_rounds_factor * log2(n)`` rounds (safety bound).
        Pull-only broadcasting needs ``Theta(log n)`` rounds once the rumour
        is widespread but can take long to get going from a single source, so
        the default bound is generous.
    callers:
        ``"uninformed"`` (default) lets only uninformed nodes open channels —
        the cost-conscious variant used inside the paper's algorithms;
        ``"all"`` has every node open a channel each step, the textbook
        variant.
    """

    name = "pull-broadcast"

    def __init__(self, max_rounds_factor: float = 30.0, callers: str = "uninformed") -> None:
        if callers not in ("uninformed", "all"):
            raise ValueError("callers must be 'uninformed' or 'all'")
        self.max_rounds_factor = float(max_rounds_factor)
        self.callers = callers

    def run(
        self,
        graph: Adjacency,
        *,
        source: int = 0,
        rng: RandomState = None,
        record_trace: bool = False,
    ) -> BroadcastResult:
        """Broadcast a rumour from ``source`` until every node is informed."""
        generator = make_rng(rng)
        if graph.n < 2:
            raise ValueError("broadcasting requires at least two nodes")
        state = SingleMessageState(graph.n, source)
        ledger = TransmissionLedger(graph.n)
        trace = SpreadingTrace(enabled=record_trace)
        ledger.begin_phase(self.name)
        max_rounds = max(8, int(self.max_rounds_factor * np.log2(max(graph.n, 2))))
        completed = False
        for round_index in range(max_rounds):
            if self.callers == "uninformed":
                callers = state.uninformed_nodes()
            else:
                callers = np.arange(graph.n, dtype=np.int64)
            if callers.size == 0:
                completed = True
                break
            targets = graph.sample_neighbors(callers, generator)
            ok = targets >= 0
            ledger.record_opens(callers)
            informed_targets = ok & state.informed[np.clip(targets, 0, None)]
            receivers = callers[informed_targets]
            senders = targets[informed_targets]
            if senders.size:
                ledger.record_pulls(senders)
            state.inform(receivers, round_index + 1)
            ledger.end_round()
            trace.record_broadcast(round_index, self.name, state)
            if state.is_complete():
                completed = True
                break
        ledger.end_phase()
        return BroadcastResult(
            protocol=self.name,
            n_nodes=graph.n,
            source=source,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            state=state,
            trace=trace if record_trace else None,
        )
