"""Single-message broadcasting baselines (push, pull, push–pull, age-based)."""

from .age_based import AgeBasedBroadcast
from .pull import PullBroadcast
from .push import PushBroadcast
from .push_pull import PushPullBroadcast
from .results import BroadcastResult

__all__ = [
    "AgeBasedBroadcast",
    "PullBroadcast",
    "PushBroadcast",
    "PushPullBroadcast",
    "BroadcastResult",
]
