"""Single-message push broadcasting (the classic rumour-spreading baseline).

In every step every *informed* node opens a channel to a uniformly random
neighbour and pushes the rumour.  Pittel's classical result gives a running
time of ``log2(n) + ln(n) + O(1)`` on the complete graph; Feige et al. extend
it to random graphs.  The paper uses broadcasting results as the background
against which gossiping is contrasted, and the broadcast-vs-gossip ablation
experiment (E8) exercises exactly these baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.knowledge import SingleMessageState
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .results import BroadcastResult

__all__ = ["PushBroadcast"]


class PushBroadcast:
    """Push-only broadcasting of a single rumour.

    Parameters
    ----------
    max_rounds_factor:
        Abort after ``max_rounds_factor * log2(n)`` rounds (safety bound).
    """

    name = "push-broadcast"

    def __init__(self, max_rounds_factor: float = 10.0) -> None:
        self.max_rounds_factor = float(max_rounds_factor)

    def run(
        self,
        graph: Adjacency,
        *,
        source: int = 0,
        rng: RandomState = None,
        record_trace: bool = False,
    ) -> BroadcastResult:
        """Broadcast a rumour from ``source`` until every node is informed."""
        generator = make_rng(rng)
        if graph.n < 2:
            raise ValueError("broadcasting requires at least two nodes")
        state = SingleMessageState(graph.n, source)
        ledger = TransmissionLedger(graph.n)
        trace = SpreadingTrace(enabled=record_trace)
        ledger.begin_phase(self.name)
        max_rounds = max(4, int(self.max_rounds_factor * np.log2(max(graph.n, 2))))
        completed = False
        for round_index in range(max_rounds):
            informed = state.informed_nodes()
            targets = graph.sample_neighbors(informed, generator)
            ok = targets >= 0
            ledger.record_opens(informed)
            ledger.record_pushes(informed)
            state.inform(targets[ok], round_index + 1)
            ledger.end_round()
            trace.record_broadcast(round_index, self.name, state)
            if state.is_complete():
                completed = True
                break
        ledger.end_phase()
        return BroadcastResult(
            protocol=self.name,
            n_nodes=graph.n,
            source=source,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            state=state,
            trace=trace if record_trace else None,
        )
