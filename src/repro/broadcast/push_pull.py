"""Single-message push–pull broadcasting.

Every node opens a channel to a uniformly random neighbour each step; the
rumour travels in both directions over every open channel.  On complete graphs
this completes in ``log_3 n + O(log log n)`` rounds (Karp et al.); on sparse
random graphs the running time is similar but — unlike on complete graphs —
the *message complexity* cannot be pushed down to ``O(n log log n)`` (Elsässer,
SPAA'06), which is precisely the broadcasting/gossiping separation the paper
builds on.  The E8 ablation experiment reproduces this separation.
"""

from __future__ import annotations

import numpy as np

from ..engine.knowledge import SingleMessageState
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .results import BroadcastResult

__all__ = ["PushPullBroadcast"]


class PushPullBroadcast:
    """Push–pull broadcasting of a single rumour.

    Parameters
    ----------
    max_rounds_factor:
        Abort after ``max_rounds_factor * log2(n)`` rounds (safety bound).
    count_only_rumor_packets:
        When true (default), a packet is only counted when it actually carries
        the rumour (an uninformed node answering a pull sends nothing).  When
        false, every open channel is charged a push and a pull packet; the
        difference matters for the communication-complexity comparison of the
        E8 ablation.
    """

    name = "push-pull-broadcast"

    def __init__(
        self,
        max_rounds_factor: float = 10.0,
        count_only_rumor_packets: bool = True,
    ) -> None:
        self.max_rounds_factor = float(max_rounds_factor)
        self.count_only_rumor_packets = bool(count_only_rumor_packets)

    def run(
        self,
        graph: Adjacency,
        *,
        source: int = 0,
        rng: RandomState = None,
        record_trace: bool = False,
    ) -> BroadcastResult:
        """Broadcast a rumour from ``source`` until every node is informed."""
        generator = make_rng(rng)
        if graph.n < 2:
            raise ValueError("broadcasting requires at least two nodes")
        state = SingleMessageState(graph.n, source)
        ledger = TransmissionLedger(graph.n)
        trace = SpreadingTrace(enabled=record_trace)
        ledger.begin_phase(self.name)
        max_rounds = max(4, int(self.max_rounds_factor * np.log2(max(graph.n, 2))))
        completed = False
        nodes = np.arange(graph.n, dtype=np.int64)
        for round_index in range(max_rounds):
            targets = graph.sample_neighbors(nodes, generator)
            ok = targets >= 0
            callers = nodes[ok]
            callees = targets[ok]
            ledger.record_opens(nodes)

            informed_before = state.informed.copy()
            # Push direction: informed caller -> callee.
            push_mask = informed_before[callers]
            # Pull direction: informed callee -> caller.
            pull_mask = informed_before[callees]
            if self.count_only_rumor_packets:
                if push_mask.any():
                    ledger.record_pushes(callers[push_mask])
                if pull_mask.any():
                    ledger.record_pulls(callees[pull_mask])
            else:
                ledger.record_pushes(callers)
                ledger.record_pulls(callees)
            newly = np.concatenate([callees[push_mask], callers[pull_mask]])
            state.inform(newly, round_index + 1)
            ledger.end_round()
            trace.record_broadcast(round_index, self.name, state)
            if state.is_complete():
                completed = True
                break
        ledger.end_phase()
        return BroadcastResult(
            protocol=self.name,
            n_nodes=graph.n,
            source=source,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            state=state,
            trace=trace if record_trace else None,
        )
