"""Karp et al.-style message-efficient broadcasting (age-quenched push–pull).

Karp, Schindelhauer, Shenker and Vöcking (FOCS 2000) showed that push–pull
broadcasting on the complete graph can be terminated after
``log_3 n + O(log log n)`` rounds and then uses only ``O(n log log n)``
transmissions — the benchmark that *cannot* be matched on sparse random graphs
(Elsässer, SPAA'06), which is the separation motivating the paper.

We implement the age-based variant: the rumour carries its age, informed nodes
keep transmitting only while the age is below ``log_3 n + quench_constant *
log log n``, and uninformed nodes keep pulling.  (Karp et al.'s median-counter
rule serves to make this robust without exact knowledge of ``n``; for the
reproduction the age rule captures the message-complexity behaviour that the
ablation experiment E8 needs.)
"""

from __future__ import annotations

import math

import numpy as np

from ..engine.knowledge import SingleMessageState
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .results import BroadcastResult

__all__ = ["AgeBasedBroadcast"]


class AgeBasedBroadcast:
    """Push–pull broadcasting with an age-based transmission cut-off.

    Parameters
    ----------
    quench_constant:
        The rumour stops being transmitted once its age exceeds
        ``log_3 n + quench_constant * log2(log2 n)``.
    extra_pull_rounds_factor:
        Uninformed nodes keep pulling for up to
        ``extra_pull_rounds_factor * log2 n`` additional rounds after the
        quench age, so stragglers can still fetch the rumour.
    """

    name = "age-based-broadcast"

    def __init__(
        self,
        quench_constant: float = 4.0,
        extra_pull_rounds_factor: float = 4.0,
    ) -> None:
        self.quench_constant = float(quench_constant)
        self.extra_pull_rounds_factor = float(extra_pull_rounds_factor)

    def quench_age(self, n: int) -> int:
        """Age after which informed nodes stop transmitting the rumour."""
        ln = math.log2(max(n, 2))
        lln = max(1.0, math.log2(max(ln, 2.0)))
        return max(1, math.ceil(math.log(max(n, 3), 3) + self.quench_constant * lln))

    def run(
        self,
        graph: Adjacency,
        *,
        source: int = 0,
        rng: RandomState = None,
        record_trace: bool = False,
    ) -> BroadcastResult:
        """Broadcast a rumour from ``source``; informed nodes quench by age."""
        generator = make_rng(rng)
        if graph.n < 2:
            raise ValueError("broadcasting requires at least two nodes")
        n = graph.n
        state = SingleMessageState(n, source)
        ledger = TransmissionLedger(n)
        trace = SpreadingTrace(enabled=record_trace)
        ledger.begin_phase(self.name)

        quench_age = self.quench_age(n)
        max_rounds = quench_age + max(
            4, int(self.extra_pull_rounds_factor * math.log2(max(n, 2)))
        )
        completed = False
        for round_index in range(max_rounds):
            rumor_age = round_index  # the rumour was born in round 0
            transmitting = state.informed & (rumor_age <= quench_age)
            transmitters = np.flatnonzero(transmitting)
            uninformed = state.uninformed_nodes()

            # Push direction: transmitting nodes call and push the rumour.
            if transmitters.size:
                targets = graph.sample_neighbors(transmitters, generator)
                ok = targets >= 0
                ledger.record_opens(transmitters)
                ledger.record_pushes(transmitters)
                state.inform(targets[ok], round_index + 1)

            # Pull direction: uninformed nodes call; transmitting callees answer.
            if uninformed.size:
                targets = graph.sample_neighbors(uninformed, generator)
                ok = targets >= 0
                ledger.record_opens(uninformed)
                answering = ok & transmitting[np.clip(targets, 0, None)]
                if answering.any():
                    ledger.record_pulls(targets[answering])
                    state.inform(uninformed[answering], round_index + 1)

            ledger.end_round()
            trace.record_broadcast(round_index, self.name, state)
            if state.is_complete():
                completed = True
                break
        ledger.end_phase()
        return BroadcastResult(
            protocol=self.name,
            n_nodes=n,
            source=source,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            state=state,
            trace=trace if record_trace else None,
            extras={"quench_age": quench_age},
        )
