"""repro — reproduction of "On the Influence of Graph Density on Randomized Gossiping".

The package implements the random phone call model, the paper's gossiping
algorithms (plain push–pull, ``fast-gossiping`` and the memory model with
leader election), the random-graph substrates they run on, broadcasting
baselines, an analysis toolkit and the experiment harness that regenerates
every table and figure of the paper's empirical section.

Quick start::

    from repro import FastGossiping, PushPullGossip, erdos_renyi

    graph = erdos_renyi(1024, expected_degree=100, rng=1, require_connected=True)
    result = FastGossiping().run(graph, rng=2)
    print(result.completed, result.messages_per_node())

Performance notes
-----------------
The simulation kernel is fully vectorized: no per-node, per-transmission or
per-walk Python loop survives on the per-round hot path.

* Knowledge updates (:meth:`repro.engine.KnowledgeMatrix.apply_transmissions`
  / ``apply_exchange``) cost ``O(channels * words)`` word operations per
  round (``words = ceil(n_messages / 64)``) instead of ``O(n)`` Python
  iterations: transmissions are applied either through one compiled
  scatter-OR pass (see below) or through a sort-by-receiver layered NumPy
  scatter whose layer count is the maximum in-degree, not the channel count.
  Start-of-step snapshot semantics are preserved by gathering sender rows
  (or filling a reusable double buffer) before the first write — never by
  copying the full matrix per round.
* Completion checking is incremental
  (:class:`repro.core.completion.CompletionTracker`): per-node missing-bit
  deficits are recounted only for rows touched in the round, making the
  every-round check ``O(receivers * words)`` with an ``O(1)`` verdict, and
  saturated rows are dropped from the transmission batch outright
  (bit-exact), so late rounds cost ``O(incomplete nodes)``.
* Random-walk queues (:class:`repro.core.WalkPool`) live in flat arrays:
  deliveries merge payloads by destination in one vectorised pass and each
  forwarding step pops the oldest walk per host with a single lexsort.
* Early rounds are sparsity-aware: protocols run on
  :class:`repro.engine.FrontierKnowledge`, which tracks each row's nonzero
  words as an index frontier and scatters only the words actually in flight
  while batches are sparse, falling back (one-way) to the dense kernels as
  rows saturate past the crossover threshold.  Set
  ``REPRO_DISABLE_FRONTIER=1`` to force the dense path (bit-identical).
* Kernel execution is pluggable: :mod:`repro.engine.backends` exposes one
  dispatch surface over three interchangeable backends — ``numpy``, ``c``
  (the serial compiled kernels built by :mod:`repro.engine._ckernel` at
  first import, cached per machine) and ``c-threads`` (the same kernels
  sharded by receiver rows across a persistent worker pool).  Selection is
  ``REPRO_KERNEL_BACKEND`` (default ``auto``) with the thread budget in
  ``REPRO_KERNEL_THREADS``; trajectories are bit-identical across backends
  and thread counts.  ``REPRO_DISABLE_CKERNEL=1`` remains the kill switch
  that forces the pure-NumPy fallback.
* Experiments are declarative scenarios: every paper figure/table and
  extension is a :class:`repro.experiments.ScenarioSpec` executed by a
  streaming, resumable sweep engine (``repro scenarios run`` with
  ``--jobs`` for process parallelism and ``--out``/``--resume`` for the
  JSONL result store that makes interrupted sweeps resume bit-identically;
  see ``docs/experiments.md``).

Run ``PYTHONPATH=src python scripts/run_benchmarks.py`` to reproduce the
committed ``BENCH_kernel.json`` baseline (full protocol runs plus raw kernel
micro-timings at n in {1000, 5000, 20000}); performance PRs should rerun it
and extend the perf trajectory.
"""

from .core import (
    FastGossiping,
    FastGossipingParameters,
    GossipProtocol,
    GossipResult,
    LeaderElection,
    LeaderElectionParameters,
    LeaderElectionResult,
    MemoryGossiping,
    MemoryGossipingParameters,
    PushPullGossip,
    PushPullParameters,
    table1_rows,
    theory_fast_gossiping,
    tuned_fast_gossiping,
    tuned_memory_gossiping,
)
from .engine import (
    FailurePlan,
    FrontierKnowledge,
    KnowledgeMatrix,
    MessageAccounting,
    NO_FAILURES,
    SingleMessageState,
    TransmissionLedger,
    make_rng,
    sample_uniform_failures,
)
from .graphs import (
    Adjacency,
    GraphSpec,
    complete_graph,
    configuration_model,
    erdos_renyi,
    hypercube,
    make_graph,
    paper_edge_probability,
    paper_expected_degree,
    paper_graph_spec,
    power_law_graph,
    random_regular,
)

__version__ = "1.0.0"

__all__ = [
    "FastGossiping",
    "FastGossipingParameters",
    "GossipProtocol",
    "GossipResult",
    "LeaderElection",
    "LeaderElectionParameters",
    "LeaderElectionResult",
    "MemoryGossiping",
    "MemoryGossipingParameters",
    "PushPullGossip",
    "PushPullParameters",
    "table1_rows",
    "theory_fast_gossiping",
    "tuned_fast_gossiping",
    "tuned_memory_gossiping",
    "FailurePlan",
    "FrontierKnowledge",
    "KnowledgeMatrix",
    "MessageAccounting",
    "NO_FAILURES",
    "SingleMessageState",
    "TransmissionLedger",
    "make_rng",
    "sample_uniform_failures",
    "Adjacency",
    "GraphSpec",
    "complete_graph",
    "configuration_model",
    "erdos_renyi",
    "hypercube",
    "make_graph",
    "paper_edge_probability",
    "paper_expected_degree",
    "paper_graph_spec",
    "power_law_graph",
    "random_regular",
    "__version__",
]
