"""repro — reproduction of "On the Influence of Graph Density on Randomized Gossiping".

The package implements the random phone call model, the paper's gossiping
algorithms (plain push–pull, ``fast-gossiping`` and the memory model with
leader election), the random-graph substrates they run on, broadcasting
baselines, an analysis toolkit and the experiment harness that regenerates
every table and figure of the paper's empirical section.

Quick start::

    from repro import FastGossiping, PushPullGossip, erdos_renyi

    graph = erdos_renyi(1024, expected_degree=100, rng=1, require_connected=True)
    result = FastGossiping().run(graph, rng=2)
    print(result.completed, result.messages_per_node())
"""

from .core import (
    FastGossiping,
    FastGossipingParameters,
    GossipProtocol,
    GossipResult,
    LeaderElection,
    LeaderElectionParameters,
    LeaderElectionResult,
    MemoryGossiping,
    MemoryGossipingParameters,
    PushPullGossip,
    PushPullParameters,
    table1_rows,
    theory_fast_gossiping,
    tuned_fast_gossiping,
    tuned_memory_gossiping,
)
from .engine import (
    FailurePlan,
    KnowledgeMatrix,
    MessageAccounting,
    NO_FAILURES,
    SingleMessageState,
    TransmissionLedger,
    make_rng,
    sample_uniform_failures,
)
from .graphs import (
    Adjacency,
    GraphSpec,
    complete_graph,
    configuration_model,
    erdos_renyi,
    hypercube,
    make_graph,
    paper_edge_probability,
    paper_expected_degree,
    paper_graph_spec,
    power_law_graph,
    random_regular,
)

__version__ = "1.0.0"

__all__ = [
    "FastGossiping",
    "FastGossipingParameters",
    "GossipProtocol",
    "GossipResult",
    "LeaderElection",
    "LeaderElectionParameters",
    "LeaderElectionResult",
    "MemoryGossiping",
    "MemoryGossipingParameters",
    "PushPullGossip",
    "PushPullParameters",
    "table1_rows",
    "theory_fast_gossiping",
    "tuned_fast_gossiping",
    "tuned_memory_gossiping",
    "FailurePlan",
    "KnowledgeMatrix",
    "MessageAccounting",
    "NO_FAILURES",
    "SingleMessageState",
    "TransmissionLedger",
    "make_rng",
    "sample_uniform_failures",
    "Adjacency",
    "GraphSpec",
    "complete_graph",
    "configuration_model",
    "erdos_renyi",
    "hypercube",
    "make_graph",
    "paper_edge_probability",
    "paper_expected_degree",
    "paper_graph_spec",
    "power_law_graph",
    "random_regular",
    "__version__",
]
