"""Graph substrate: CSR adjacency, random graph generators and properties."""

from .adjacency import Adjacency
from .configuration_model import configuration_model, random_regular
from .deterministic import complete_graph, hypercube
from .erdos_renyi import erdos_renyi, expected_degree_to_p, paper_edge_probability
from .generators import (
    GraphSpec,
    make_graph,
    paper_expected_degree,
    paper_graph_spec,
)
from .power_law import power_law_degree_sequence, power_law_graph
from .properties import (
    DegreeStatistics,
    GraphProfile,
    average_distance_sample,
    degree_statistics,
    estimate_conductance,
    estimate_diameter,
    profile_graph,
    spectral_gap,
)

__all__ = [
    "Adjacency",
    "configuration_model",
    "random_regular",
    "complete_graph",
    "hypercube",
    "erdos_renyi",
    "expected_degree_to_p",
    "paper_edge_probability",
    "GraphSpec",
    "make_graph",
    "paper_expected_degree",
    "paper_graph_spec",
    "power_law_degree_sequence",
    "power_law_graph",
    "DegreeStatistics",
    "GraphProfile",
    "average_distance_sample",
    "degree_statistics",
    "estimate_conductance",
    "estimate_diameter",
    "profile_graph",
    "spectral_gap",
]
