"""Erdős–Rényi ``G(n, p)`` random graphs.

The paper's empirical section uses ``G(n, p)`` with ``p = log^2 n / n`` (i.e.
expected degree ``log^2 n``), and the analysis covers expected degrees
``Omega(log^{2+eps} n)``.  The generator below uses the standard geometric
skipping technique (Batagelj & Brandes) so that sampling costs ``O(n + m)``
expected time instead of ``O(n^2)``, with the inner loop fully vectorised in
NumPy.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..engine.rng import RandomState, make_rng
from .adjacency import Adjacency

__all__ = ["erdos_renyi", "expected_degree_to_p", "paper_edge_probability"]


def expected_degree_to_p(n: int, expected_degree: float) -> float:
    """Edge probability giving the requested expected degree in ``G(n, p)``."""
    if n < 2:
        return 0.0
    return min(1.0, float(expected_degree) / float(n - 1))


def paper_edge_probability(n: int, exponent: float = 2.0) -> float:
    """The paper's density preset ``p = log^exponent(n) / n`` (base-2 log)."""
    if n < 2:
        return 1.0
    return min(1.0, math.log2(n) ** exponent / n)


def _sample_gnp_edges(n: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Sample the edge set of ``G(n, p)`` via geometric gap skipping.

    Edges of the upper triangle are enumerated in row-major order and the gaps
    between successive present edges follow a geometric distribution with
    success probability ``p``; we draw gaps in vectorised batches.
    """
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0 or p <= 0.0:
        return np.zeros((0, 2), dtype=np.int64)
    if p >= 1.0:
        rows, cols = np.triu_indices(n, k=1)
        return np.column_stack([rows, cols]).astype(np.int64)

    expected_edges = int(total_pairs * p)
    positions = []
    current = -1
    # Draw geometric gaps in batches sized to the expected remaining count.
    while current < total_pairs - 1:
        remaining_expectation = max(
            1024, int((total_pairs - current) * p * 1.1) + 16
        )
        gaps = rng.geometric(p, size=remaining_expectation)
        steps = np.cumsum(gaps)
        batch = current + steps
        batch = batch[batch < total_pairs]
        positions.append(batch)
        if batch.size < steps.size:
            current = total_pairs  # overshot the end: done
        else:
            current = int(batch[-1])
    if not positions:
        return np.zeros((0, 2), dtype=np.int64)
    linear = np.concatenate(positions)
    if linear.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    # Convert linear upper-triangle positions back to (row, col) pairs.  Row r
    # (0-based) owns positions [r*n - r*(r+1)/2 - r .. ), easier via search on
    # the cumulative row sizes.
    row_sizes = np.arange(n - 1, 0, -1, dtype=np.int64)
    row_starts = np.concatenate([[0], np.cumsum(row_sizes)])
    rows = np.searchsorted(row_starts, linear, side="right") - 1
    cols = linear - row_starts[rows] + rows + 1
    return np.column_stack([rows, cols]).astype(np.int64)


def erdos_renyi(
    n: int,
    p: Optional[float] = None,
    *,
    expected_degree: Optional[float] = None,
    rng: RandomState = None,
    require_connected: bool = False,
    max_retries: int = 20,
) -> Adjacency:
    """Sample an Erdős–Rényi random graph ``G(n, p)``.

    Parameters
    ----------
    n:
        Number of nodes.
    p:
        Edge probability.  Exactly one of ``p`` and ``expected_degree`` must
        be given.
    expected_degree:
        Alternative parametrisation; converted via
        :func:`expected_degree_to_p`.
    rng:
        Randomness source.
    require_connected:
        When true, resample (up to ``max_retries`` times) until the sampled
        graph is connected.  In the paper's density regime (expected degree
        ``log^2 n``) the graph is connected with overwhelming probability, so
        retries are essentially free; the option exists because the gossiping
        completion criterion is meaningless on a disconnected graph.
    max_retries:
        Maximum number of resampling attempts when ``require_connected``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if (p is None) == (expected_degree is None):
        raise ValueError("specify exactly one of p and expected_degree")
    if p is None:
        p = expected_degree_to_p(n, float(expected_degree))
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    generator = make_rng(rng)
    attempts = max(1, max_retries if require_connected else 1)
    last: Optional[Adjacency] = None
    for _ in range(attempts):
        edges = _sample_gnp_edges(n, p, generator)
        graph = Adjacency.from_edges(n, edges)
        last = graph
        if not require_connected or graph.is_connected():
            return graph
    raise RuntimeError(
        f"failed to sample a connected G({n}, {p:.4g}) in {attempts} attempts; "
        f"last sample had min degree {last.min_degree() if last else 'n/a'}"
    )
