"""Power-law random graphs (Chung–Lu / Aiello-style degree sequences).

The related-work section of the paper cites Aiello, Chung and Lu's random
graph model for power-law graphs as one of the graph families motivating the
study of density effects.  We provide a Chung–Lu style generator: each pair of
nodes ``(u, v)`` is connected independently with probability proportional to
``w_u * w_v`` where the weights follow a truncated power law.  This gives a
sparse heavy-tailed substrate on which the protocols (and the degree
assumptions they rely on) can be stress-tested and is used by the density
extension experiments and examples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.rng import RandomState, make_rng
from .adjacency import Adjacency
from .configuration_model import configuration_model

__all__ = ["power_law_degree_sequence", "power_law_graph"]


def power_law_degree_sequence(
    n: int,
    exponent: float = 2.5,
    *,
    min_degree: int = 2,
    max_degree: Optional[int] = None,
    rng: RandomState = None,
) -> np.ndarray:
    """Sample an even-sum power-law degree sequence.

    Degrees are drawn from ``P(k) ~ k^{-exponent}`` on
    ``[min_degree, max_degree]`` (default cap ``sqrt(n)``, the standard
    structural cutoff that keeps the configuration model close to simple).

    Parameters
    ----------
    n:
        Number of nodes.
    exponent:
        Power-law exponent (must exceed 1).
    min_degree:
        Smallest admissible degree.
    max_degree:
        Largest admissible degree; defaults to ``int(sqrt(n))``.
    rng:
        Randomness source.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    if min_degree < 1:
        raise ValueError(f"min_degree must be at least 1, got {min_degree}")
    if max_degree is None:
        max_degree = max(min_degree, int(np.sqrt(n)))
    if max_degree < min_degree:
        raise ValueError("max_degree must be at least min_degree")
    generator = make_rng(rng)
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    weights = support ** (-exponent)
    weights /= weights.sum()
    degrees = generator.choice(
        np.arange(min_degree, max_degree + 1, dtype=np.int64), size=n, p=weights
    )
    if int(degrees.sum()) % 2:
        # Make the stub count even by bumping one node, preferring a node
        # whose degree stays within the cap.
        candidates = np.flatnonzero(degrees < max_degree)
        target = int(candidates[0]) if candidates.size else 0
        degrees[target] += 1
    return degrees


def power_law_graph(
    n: int,
    exponent: float = 2.5,
    *,
    min_degree: int = 2,
    max_degree: Optional[int] = None,
    rng: RandomState = None,
) -> Adjacency:
    """Sample a power-law graph via the erased configuration model."""
    generator = make_rng(rng)
    degrees = power_law_degree_sequence(
        n,
        exponent,
        min_degree=min_degree,
        max_degree=max_degree,
        rng=generator,
    )
    return configuration_model(degrees, rng=generator)
