"""Deterministic reference topologies: complete graphs and hypercubes.

The complete graph is the benchmark topology of the original gossiping results
(Karp et al. and Berenbrink et al.): the paper's central question is whether
their complete-graph results carry over to sparse random graphs, so the
complete graph is needed as the comparison substrate for the density sweep.
The hypercube is included as a classic bounded-degree reference topology from
the broadcasting literature (Feige et al.) and is used in examples and tests.
"""

from __future__ import annotations

import numpy as np

from .adjacency import Adjacency

__all__ = ["complete_graph", "hypercube"]


def complete_graph(n: int) -> Adjacency:
    """The complete graph ``K_n`` (every pair of distinct nodes adjacent)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if n == 1:
        return Adjacency(np.asarray([0, 0], dtype=np.int64), np.zeros(0, dtype=np.int64))
    rows, cols = np.triu_indices(n, k=1)
    edges = np.column_stack([rows, cols]).astype(np.int64)
    return Adjacency.from_edges(n, edges)


def hypercube(dimension: int) -> Adjacency:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    Node labels are interpreted as bit strings; two nodes are adjacent when
    their labels differ in exactly one bit.
    """
    if dimension < 0:
        raise ValueError(f"dimension must be non-negative, got {dimension}")
    n = 1 << dimension
    if dimension == 0:
        return Adjacency(np.asarray([0, 0], dtype=np.int64), np.zeros(0, dtype=np.int64))
    nodes = np.arange(n, dtype=np.int64)
    edges = []
    for bit in range(dimension):
        partner = nodes ^ (1 << bit)
        mask = nodes < partner
        edges.append(np.column_stack([nodes[mask], partner[mask]]))
    return Adjacency.from_edges(n, np.concatenate(edges))
