"""Unified graph factory and the paper's density presets.

Experiments describe their topology with a :class:`GraphSpec` — a small,
serialisable description (kind + parameters) — and obtain concrete
:class:`~repro.graphs.adjacency.Adjacency` instances from :func:`make_graph`.
The module also hosts the density presets used throughout the paper:
``p = log^2 n / n`` for the empirical section and expected degree
``log^{2+eps} n`` for the analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..engine.rng import RandomState, make_rng
from .adjacency import Adjacency
from .configuration_model import configuration_model, random_regular
from .deterministic import complete_graph, hypercube
from .erdos_renyi import erdos_renyi, expected_degree_to_p, paper_edge_probability
from .power_law import power_law_graph

__all__ = [
    "GraphKind",
    "GraphSpec",
    "make_graph",
    "paper_expected_degree",
    "paper_graph_spec",
]

#: Supported graph kinds (string constants keep specs JSON-serialisable).
GraphKind = str

_KINDS = {
    "erdos_renyi",
    "random_regular",
    "configuration_model",
    "complete",
    "hypercube",
    "power_law",
}


def paper_expected_degree(n: int, exponent: float = 2.0) -> float:
    """Expected degree ``log_2(n)**exponent`` used by the paper's simulations."""
    if n < 2:
        return 0.0
    return math.log2(n) ** exponent


@dataclass(frozen=True)
class GraphSpec:
    """Serializable description of a graph family instance.

    Attributes
    ----------
    kind:
        One of ``erdos_renyi``, ``random_regular``, ``configuration_model``,
        ``complete``, ``hypercube``, ``power_law``.
    n:
        Number of nodes (for ``hypercube`` this is the number of nodes and
        must be a power of two).
    params:
        Kind-specific parameters (e.g. ``p`` or ``expected_degree`` for
        Erdős–Rényi, ``d`` for random-regular, ``exponent`` for power-law).
    """

    kind: GraphKind
    n: int
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown graph kind {self.kind!r}; expected one of {sorted(_KINDS)}")
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")

    def describe(self) -> str:
        """Human-readable one-line description."""
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}(n={self.n}{', ' + params if params else ''})"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON persistence."""
        return {"kind": self.kind, "n": self.n, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GraphSpec":
        """Inverse of :meth:`as_dict`."""
        return cls(kind=data["kind"], n=int(data["n"]), params=dict(data.get("params", {})))


def paper_graph_spec(n: int, exponent: float = 2.0) -> GraphSpec:
    """The topology of the paper's empirical section: ``G(n, log^2 n / n)``."""
    return GraphSpec(
        kind="erdos_renyi",
        n=n,
        params={"p": paper_edge_probability(n, exponent), "require_connected": True},
    )


def make_graph(spec: GraphSpec, rng: RandomState = None) -> Adjacency:
    """Instantiate the graph described by ``spec``.

    Parameters
    ----------
    spec:
        The graph description.
    rng:
        Randomness source (ignored by the deterministic kinds).
    """
    generator = make_rng(rng)
    params = dict(spec.params)
    if spec.kind == "erdos_renyi":
        return erdos_renyi(
            spec.n,
            params.pop("p", None),
            expected_degree=params.pop("expected_degree", None),
            require_connected=bool(params.pop("require_connected", False)),
            max_retries=int(params.pop("max_retries", 20)),
            rng=generator,
        )
    if spec.kind == "random_regular":
        return random_regular(
            spec.n,
            int(params.pop("d")),
            require_connected=bool(params.pop("require_connected", False)),
            max_retries=int(params.pop("max_retries", 20)),
            rng=generator,
        )
    if spec.kind == "configuration_model":
        return configuration_model(params.pop("degrees"), rng=generator)
    if spec.kind == "complete":
        return complete_graph(spec.n)
    if spec.kind == "hypercube":
        dimension = int(round(math.log2(spec.n)))
        if 2**dimension != spec.n:
            raise ValueError(f"hypercube size must be a power of two, got {spec.n}")
        return hypercube(dimension)
    if spec.kind == "power_law":
        return power_law_graph(
            spec.n,
            float(params.pop("exponent", 2.5)),
            min_degree=int(params.pop("min_degree", 2)),
            max_degree=params.pop("max_degree", None),
            rng=generator,
        )
    raise ValueError(f"unknown graph kind {spec.kind!r}")  # pragma: no cover
