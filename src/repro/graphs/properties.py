"""Structural graph properties relevant to the paper's assumptions.

The analysis in the paper relies on structural features of dense random
graphs: degree concentration around the expectation, connectivity, good
expansion (spectral gap / conductance), short distances and the local
pseudo-tree structure of sparse neighbourhoods.  This module computes or
estimates these quantities so that experiments can verify the assumptions on
the sampled instances and so that the examples can illustrate *why* the
protocols behave as they do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..engine.rng import RandomState, make_rng
from .adjacency import Adjacency

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "spectral_gap",
    "estimate_conductance",
    "estimate_diameter",
    "average_distance_sample",
    "GraphProfile",
    "profile_graph",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of the degree sequence."""

    minimum: int
    maximum: int
    mean: float
    std: float

    @property
    def concentration(self) -> float:
        """Relative spread ``(max - min) / mean`` (0 for regular graphs)."""
        if self.mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.mean


def degree_statistics(graph: Adjacency) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``."""
    degrees = graph.degrees
    if degrees.size == 0:
        return DegreeStatistics(0, 0, 0.0, 0.0)
    return DegreeStatistics(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        std=float(degrees.std()),
    )


def _normalized_adjacency(graph: Adjacency):
    """Symmetrically normalised adjacency matrix ``D^{-1/2} A D^{-1/2}``."""
    import scipy.sparse as sp

    n = graph.n
    degrees = np.maximum(graph.degrees.astype(np.float64), 1.0)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    rows = np.repeat(np.arange(n), graph.degrees)
    cols = graph.indices
    vals = inv_sqrt[rows] * inv_sqrt[cols]
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def spectral_gap(graph: Adjacency, *, k: int = 2) -> float:
    """Spectral gap ``1 - lambda_2`` of the normalised adjacency matrix.

    A large gap certifies rapid mixing of the random walks used in Phase II of
    Algorithm 1 (the paper notes the eigenvalues of the transition matrix of
    these graphs are inverse polynomial in ``d``).  Uses sparse Lanczos
    iteration; intended for graphs up to a few tens of thousands of nodes.
    """
    import scipy.sparse.linalg as spla

    if graph.n < 3:
        return 1.0
    matrix = _normalized_adjacency(graph)
    k_eff = min(max(2, k), graph.n - 1)
    vals = spla.eigsh(matrix, k=k_eff, which="LA", return_eigenvectors=False)
    vals = np.sort(vals)[::-1]
    return float(1.0 - vals[1])


def estimate_conductance(
    graph: Adjacency,
    *,
    samples: int = 50,
    rng: RandomState = None,
) -> float:
    """Estimate the conductance by sweeping random BFS-ball and random cuts.

    Exact conductance is NP-hard; the estimate returned here is an *upper
    bound*: the smallest conductance found over a collection of candidate cuts
    (BFS balls around random seeds and random bisections).  For expander-like
    random graphs the bound is well away from zero, which is all the
    experiments need to verify.
    """
    if graph.n < 4 or graph.num_edges == 0:
        return 1.0
    generator = make_rng(rng)
    volume_total = float(graph.degrees.sum())
    best = 1.0

    def cut_conductance(mask: np.ndarray) -> float:
        size = int(mask.sum())
        if size == 0 or size == graph.n:
            return 1.0
        volume = float(graph.degrees[mask].sum())
        volume = min(volume, volume_total - volume)
        if volume == 0:
            return 1.0
        src = np.repeat(np.arange(graph.n), graph.degrees)
        crossing = np.count_nonzero(mask[src] != mask[graph.indices]) / 2.0
        return crossing / volume

    for _ in range(max(1, samples)):
        seed = int(generator.integers(graph.n))
        dist = graph.bfs_distances(seed)
        reachable = dist >= 0
        radius = int(dist[reachable].max()) if np.any(reachable) else 0
        if radius >= 1:
            r = int(generator.integers(1, radius + 1))
            mask = (dist >= 0) & (dist <= r)
            best = min(best, cut_conductance(mask))
        # Random bisection candidate.
        mask = generator.random(graph.n) < 0.5
        best = min(best, cut_conductance(mask))
    return float(best)


def estimate_diameter(
    graph: Adjacency, *, samples: int = 10, rng: RandomState = None
) -> int:
    """Estimate the diameter as the largest eccentricity over sampled sources.

    This is a lower bound on the true diameter; for random graphs with degree
    ``log^2 n`` the diameter is ``Theta(log n / log log n)`` and a handful of
    BFS sweeps recovers it reliably.
    """
    if graph.n <= 1:
        return 0
    generator = make_rng(rng)
    sources = generator.choice(graph.n, size=min(samples, graph.n), replace=False)
    best = 0
    for source in sources.tolist():
        dist = graph.bfs_distances(int(source))
        reachable = dist[dist >= 0]
        if reachable.size:
            best = max(best, int(reachable.max()))
    return best


def average_distance_sample(
    graph: Adjacency, *, samples: int = 10, rng: RandomState = None
) -> float:
    """Average shortest-path distance estimated from sampled BFS sources."""
    if graph.n <= 1:
        return 0.0
    generator = make_rng(rng)
    sources = generator.choice(graph.n, size=min(samples, graph.n), replace=False)
    total = 0.0
    count = 0
    for source in sources.tolist():
        dist = graph.bfs_distances(int(source))
        reachable = dist[dist > 0]
        total += float(reachable.sum())
        count += int(reachable.size)
    return total / count if count else float("inf")


@dataclass(frozen=True)
class GraphProfile:
    """A bundle of structural properties of a sampled graph."""

    n: int
    num_edges: int
    degrees: DegreeStatistics
    connected: bool
    diameter_estimate: int
    average_distance: float
    spectral_gap: Optional[float]
    conductance_estimate: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reporting."""
        return {
            "n": self.n,
            "num_edges": self.num_edges,
            "min_degree": self.degrees.minimum,
            "max_degree": self.degrees.maximum,
            "mean_degree": self.degrees.mean,
            "degree_std": self.degrees.std,
            "connected": self.connected,
            "diameter_estimate": self.diameter_estimate,
            "average_distance": self.average_distance,
            "spectral_gap": self.spectral_gap,
            "conductance_estimate": self.conductance_estimate,
        }


def profile_graph(
    graph: Adjacency,
    *,
    rng: RandomState = None,
    spectral: bool = True,
    conductance_samples: int = 20,
    distance_samples: int = 8,
) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``.

    ``spectral`` may be disabled for very large graphs where the Lanczos
    iteration becomes the dominant cost.
    """
    generator = make_rng(rng)
    gap: Optional[float] = None
    if spectral and graph.n >= 3 and graph.num_edges > 0:
        gap = spectral_gap(graph)
    conductance: Optional[float] = None
    if graph.num_edges > 0:
        conductance = estimate_conductance(
            graph, samples=conductance_samples, rng=generator
        )
    return GraphProfile(
        n=graph.n,
        num_edges=graph.num_edges,
        degrees=degree_statistics(graph),
        connected=graph.is_connected(),
        diameter_estimate=estimate_diameter(graph, samples=distance_samples, rng=generator),
        average_distance=average_distance_sample(
            graph, samples=distance_samples, rng=generator
        ),
        spectral_gap=gap,
        conductance_estimate=conductance,
    )
