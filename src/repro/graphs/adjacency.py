"""Compressed sparse row adjacency structure used by all simulations.

The protocols in this library only need three graph operations, all of which
must be fast and allocation-light because they sit in the per-round hot loop:

* uniformly sampling a random neighbour for *every* node at once
  (:meth:`Adjacency.sample_neighbors`, one batched draw per round),
* sampling distinct neighbours while avoiding short per-node address lists —
  the memory model's ``open-avoid`` — for a whole batch of callers at once
  (:meth:`Adjacency.sample_neighbors_avoiding_many`: one ``searchsorted``
  pass over a cached ``owner * n + neighbour`` key array plus vectorised
  skip-sampling; the single-node :meth:`Adjacency.sample_neighbors_avoiding`
  remains for callers outside the hot path), and
* iterating neighbours of a node (for structural analysis and the
  vectorised BFS used by connectivity checks).

Everything is batched NumPy — no per-node Python loop survives on the
per-round hot path.  The batched samplers follow the library's fixed RNG
stream discipline (uniforms drawn per batch in caller order, fallbacks
afterwards), and ``tests/core/test_batched_equivalence.py`` plus
``tests/core/test_node_memory.py`` pin them bit-identically to per-node
reference loops sharing that discipline.

:class:`Adjacency` stores the graph in CSR form (``indptr``/``indices``) with
sorted neighbour lists, which supports all of the above with NumPy
vectorisation and binary search.  Graphs are undirected and simple (no
self-loops, no parallel edges); generators that naturally produce
multi-edges (the configuration model) deduplicate before constructing an
:class:`Adjacency`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Adjacency"]


class Adjacency:
    """Immutable undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        CSR row pointer of length ``n + 1``.
    indices:
        Concatenated, per-row sorted neighbour lists.

    Use the :meth:`from_edges`, :meth:`from_neighbor_lists` or
    :meth:`from_networkx` constructors rather than building the arrays by
    hand.
    """

    __slots__ = ("n", "indptr", "indices", "degrees", "has_isolated", "_owner_keys")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("inconsistent CSR structure")
        self.n = int(self.indptr.size - 1)
        self.degrees = np.diff(self.indptr)
        #: Whether any node has degree zero (precomputed: neighbour sampling
        #: takes a branch-free fast path when every node has neighbours).
        self.has_isolated = bool(self.n) and bool((self.degrees == 0).any())
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise ValueError("neighbour index out of range")
        #: Lazily built ``owner * n + neighbour`` key array (globally sorted
        #: because per-row neighbour lists are sorted); enables one
        #: searchsorted pass over arbitrary (node, address) query batches.
        self._owner_keys: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray) -> "Adjacency":
        """Build from an ``(m, 2)`` array of undirected edges.

        Self-loops and duplicate edges are removed.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size:
            if edges.min() < 0 or edges.max() >= n:
                raise ValueError("edge endpoint out of range")
            # Drop self loops.
            edges = edges[edges[:, 0] != edges[:, 1]]
            # Canonical order + dedup.
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            keys = lo * np.int64(n) + hi
            _, unique_idx = np.unique(keys, return_index=True)
            edges = np.column_stack([lo[unique_idx], hi[unique_idx]])
        # Symmetrise.
        if edges.size:
            src = np.concatenate([edges[:, 0], edges[:, 1]])
            dst = np.concatenate([edges[:, 1], edges[:, 0]])
        else:
            src = np.zeros(0, dtype=np.int64)
            dst = np.zeros(0, dtype=np.int64)
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst)

    @classmethod
    def from_neighbor_lists(cls, neighbor_lists: Sequence[Sequence[int]]) -> "Adjacency":
        """Build from a list of per-node neighbour lists (must be symmetric)."""
        n = len(neighbor_lists)
        edges: List[Tuple[int, int]] = []
        for u, nbrs in enumerate(neighbor_lists):
            for v in nbrs:
                edges.append((u, int(v)))
        if not edges:
            return cls(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64))
        arr = np.asarray(edges, dtype=np.int64)
        return cls.from_edges(n, arr)

    @classmethod
    def from_networkx(cls, graph) -> "Adjacency":
        """Build from a :class:`networkx.Graph` with integer-labelled nodes."""
        import networkx as nx  # local import: optional dependency path

        mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
        edges = np.asarray(
            [(mapping[u], mapping[v]) for u, v in graph.edges()], dtype=np.int64
        )
        return cls.from_edges(graph.number_of_nodes(), edges)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (mainly for analysis/tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edge_list())
        return g

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.size // 2)

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self.degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbour array of ``node`` (a view, do not mutate)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def edge_list(self) -> np.ndarray:
        """``(m, 2)`` array of undirected edges with ``u < v``."""
        src = np.repeat(np.arange(self.n), self.degrees)
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def min_degree(self) -> int:
        """Minimum degree over all nodes."""
        return int(self.degrees.min()) if self.n else 0

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return int(self.degrees.max()) if self.n else 0

    def mean_degree(self) -> float:
        """Average degree over all nodes."""
        return float(self.degrees.mean()) if self.n else 0.0

    # ------------------------------------------------------------------ #
    # Random neighbour sampling (hot path)
    # ------------------------------------------------------------------ #
    def sample_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample one uniformly random neighbour for each entry of ``nodes``.

        Nodes of degree zero receive ``-1``.  Repeated node entries get
        independent samples, matching the random phone call model where every
        node opens its channel independently each step.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0, dtype=np.int64)
        deg = self.degrees[nodes]
        if not self.has_isolated:
            # Every node has a neighbour: skip the -1 masking entirely.  The
            # random draw count matches the masked path, so both consume the
            # generator identically.
            offsets = (rng.random(nodes.size) * deg).astype(np.int64)
            return self.indices[self.indptr[nodes] + offsets]
        result = np.full(nodes.size, -1, dtype=np.int64)
        ok = deg > 0
        if np.any(ok):
            offsets = (rng.random(int(ok.sum())) * deg[ok]).astype(np.int64)
            result[ok] = self.indices[self.indptr[nodes[ok]] + offsets]
        return result

    def sample_neighbor(self, node: int, rng: np.random.Generator) -> int:
        """Sample one uniformly random neighbour of a single node (-1 if isolated)."""
        return int(self.sample_neighbors(np.asarray([node]), rng)[0])

    def sample_neighbors_avoiding(
        self,
        node: int,
        rng: np.random.Generator,
        avoid: Optional[Iterable[int]] = None,
        count: int = 1,
        distinct: bool = True,
    ) -> np.ndarray:
        """Sample neighbours of ``node`` avoiding the addresses in ``avoid``.

        This implements the memory model's ``open-avoid`` operation: choose a
        neighbour uniformly at random from ``N(node) \\ avoid``.  When fewer
        eligible neighbours than ``count`` exist the returned array is shorter
        (possibly empty).

        Parameters
        ----------
        node:
            The calling node.
        rng:
            Randomness source.
        avoid:
            Addresses that must not be chosen (e.g. the node's memory list).
        count:
            Number of samples requested.
        distinct:
            When true (default) the samples are distinct neighbours.
        """
        nbrs = self.neighbors(node)
        if avoid is not None:
            if isinstance(avoid, np.ndarray):
                avoid_arr = avoid.astype(np.int64, copy=False)
            else:
                avoid_arr = np.fromiter((int(a) for a in avoid), dtype=np.int64)
            if avoid_arr.size and nbrs.size:
                # The neighbour list is already sorted, so each avoided
                # address is located with a binary search instead of the
                # O(len(nbrs) * len(avoid)) ``np.isin`` scan.
                pos = np.searchsorted(nbrs, avoid_arr)
                in_range = pos < nbrs.size
                hit = pos[in_range][nbrs[pos[in_range]] == avoid_arr[in_range]]
                if hit.size:
                    keep = np.ones(nbrs.size, dtype=bool)
                    keep[hit] = False
                    nbrs = nbrs[keep]
        if nbrs.size == 0 or count <= 0:
            return np.zeros(0, dtype=np.int64)
        if distinct:
            k = min(count, int(nbrs.size))
            picked = rng.choice(nbrs, size=k, replace=False)
        else:
            picked = rng.choice(nbrs, size=count, replace=True)
        return np.asarray(picked, dtype=np.int64)

    def _ensure_owner_keys(self) -> np.ndarray:
        """``owner * n + neighbour`` for every CSR entry, globally sorted."""
        if self._owner_keys is None:
            owners = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
            self._owner_keys = owners * np.int64(self.n) + self.indices
        return self._owner_keys

    def neighbor_positions(self, nodes: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Per-pair local position of ``values[i]`` in ``nodes[i]``'s list.

        Returns -1 where ``values[i]`` is not a neighbour of ``nodes[i]``.
        All pairs are resolved with a single binary search over the cached
        ``owner * n + neighbour`` key array, so the cost is one
        ``searchsorted`` pass regardless of how many distinct nodes appear.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if nodes.size == 0:
            return np.zeros(0, dtype=np.int64)
        # Out-of-range addresses are never neighbours; clamping them to a
        # self-key (node * n + node, never present: no self-loops) keeps the
        # key arithmetic from aliasing into the next node's key range.
        in_graph = (values >= 0) & (values < self.n)
        safe_values = np.where(in_graph, values, nodes)
        keys = nodes * np.int64(self.n) + safe_values
        owner_keys = self._ensure_owner_keys()
        pos = np.searchsorted(owner_keys, keys)
        local = np.full(nodes.size, -1, dtype=np.int64)
        in_range = pos < owner_keys.size
        matched = np.zeros(nodes.size, dtype=bool)
        matched[in_range] = owner_keys[pos[in_range]] == keys[in_range]
        local[matched] = pos[matched] - self.indptr[nodes[matched]]
        return local

    def sample_neighbors_avoiding_many(
        self,
        nodes: np.ndarray,
        rng: np.random.Generator,
        avoid: Optional[np.ndarray] = None,
        count: int = 1,
    ) -> np.ndarray:
        """Batched ``open-avoid``: distinct random neighbours for many callers.

        For every ``nodes[i]`` this samples up to ``count`` *distinct*
        neighbours uniformly from ``N(nodes[i]) \\ avoid[i]``, exactly like
        calling :meth:`sample_neighbors_avoiding` per node, but with no
        per-node Python: avoided addresses are located with one
        ``searchsorted`` pass over all callers and the samples are drawn by
        rank (skip-sampling over the excluded positions).

        Parameters
        ----------
        nodes:
            Caller identifiers, shape ``(m,)``.  Entries may repeat (each row
            is an independent draw).
        rng:
            Randomness source.
        avoid:
            Optional ``(m, A)`` matrix of addresses to avoid per caller;
            entries ``< 0`` are empty slots.  Duplicate addresses within a row
            are tolerated (a node's memory may store the same neighbour twice
            after a fallback re-open).
        count:
            Number of distinct samples requested per caller.

        Returns
        -------
        numpy.ndarray
            ``(m, count)`` targets; column ``j`` is caller ``i``'s ``j``-th
            sample or ``-1`` when fewer than ``j + 1`` eligible neighbours
            exist.  Failures always occupy the trailing columns.

        Notes
        -----
        **RNG stream discipline** — one call consumes exactly
        ``rng.random((m, count))`` (row-major), independent of degrees and
        avoid lists.  A per-node reference loop replicates the batch
        bit-for-bit by drawing the same matrix up front and mapping
        ``U[i, j]`` through ordinary skip-sampling; the equivalence tests pin
        exactly this.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        m = nodes.size
        if count <= 0:
            return np.zeros((m, 0), dtype=np.int64)
        uniforms = rng.random((m, count))
        result = np.full((m, count), -1, dtype=np.int64)
        if m == 0 or self.indices.size == 0:
            return result
        deg = self.degrees[nodes]
        starts = self.indptr[nodes]
        sentinel = np.int64(self.n)  # every local position is < degree <= n - 1

        # Locate the avoided addresses inside each caller's neighbour slice.
        avoid_width = 0
        if avoid is not None:
            avoid = np.asarray(avoid, dtype=np.int64)
            if avoid.ndim != 2 or avoid.shape[0] != m:
                raise ValueError("avoid must have shape (len(nodes), A)")
            avoid_width = avoid.shape[1]
        excl_width = avoid_width + max(0, count - 1)
        excluded = np.full((m, max(excl_width, 1)), sentinel, dtype=np.int64)
        if avoid_width:
            present = avoid >= 0
            flat = np.flatnonzero(present.ravel())
            if flat.size:
                local = self.neighbor_positions(
                    np.repeat(nodes, avoid_width)[flat], avoid.ravel()[flat]
                )
                block = np.full(m * avoid_width, sentinel, dtype=np.int64)
                block[flat[local >= 0]] = local[local >= 0]
                excluded[:, :avoid_width] = block.reshape(m, avoid_width)
            excluded.sort(axis=1)
            # Duplicate addresses in a row must not be double-counted.
            dup = excluded[:, 1:] == excluded[:, :-1]
            dup &= excluded[:, 1:] < sentinel
            if dup.any():
                excluded[:, 1:][dup] = sentinel
                excluded.sort(axis=1)
        eligible = deg - (excluded < sentinel).sum(axis=1)

        for j in range(count):
            pool = eligible - j
            valid = pool > 0
            if not valid.any():
                break
            rank = (uniforms[:, j] * np.maximum(pool, 1)).astype(np.int64)
            rank = np.minimum(rank, np.maximum(pool - 1, 0))
            # Map the rank among eligible positions to an actual local
            # position by stepping over each excluded position (ascending).
            for k in range(excl_width):
                rank += rank >= excluded[:, k]
            pos = np.where(valid, starts + rank, 0)
            result[valid, j] = self.indices[pos][valid]
            if j < count - 1:
                excluded[:, avoid_width + j] = np.where(valid, rank, sentinel)
                excluded.sort(axis=1)
        return result

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def bfs_distances(self, source: int, cutoff: Optional[int] = None) -> np.ndarray:
        """Breadth-first distances from ``source`` (-1 for unreachable).

        ``cutoff`` optionally limits the search radius.
        """
        dist = np.full(self.n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        level = 0
        while frontier.size:
            if cutoff is not None and level >= cutoff:
                break
            # Expand the whole frontier at once: gather each frontier node's
            # CSR slice via a repeat-offset index instead of a per-node loop.
            counts = self.degrees[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            starts = self.indptr[frontier]
            offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            nbrs = self.indices[np.repeat(starts, counts) + offsets]
            fresh = np.unique(nbrs[dist[nbrs] < 0])
            if fresh.size:
                dist[fresh] = level + 1
            frontier = fresh
            level += 1
        return dist

    def connected_component(self, source: int) -> np.ndarray:
        """Node identifiers of the component containing ``source``."""
        dist = self.bfs_distances(source)
        return np.flatnonzero(dist >= 0)

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graphs count as connected)."""
        if self.n <= 1:
            return True
        return self.connected_component(0).size == self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Adjacency(n={self.n}, m={self.num_edges}, mean_degree={self.mean_degree():.2f})"
