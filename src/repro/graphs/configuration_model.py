"""Configuration-model random graphs (random pairing of degree stubs).

Section 2 of the paper defines the configuration model following Wormald: each
node owns ``d`` stubs and a uniformly random perfect matching of all stubs
(a *pairing*) defines the edge set.  The pairing can create self-loops and
multi-edges; the paper notes that for the degree range considered their number
is constant with high probability and treats them separately in the analysis.

For simulation we follow the common *erased* configuration model: self-loops
and parallel edges are dropped after pairing.  In the ``d >= log^2 n`` regime
this changes at most a vanishing fraction of edges and keeps the graph simple,
which the communication model requires (a node cannot call itself).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..engine.rng import RandomState, make_rng
from .adjacency import Adjacency

__all__ = ["configuration_model", "random_regular"]


def _pair_stubs(degrees: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Return an ``(m, 2)`` array of endpoints from a uniform stub pairing."""
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    if stubs.size % 2:
        raise ValueError("sum of degrees must be even")
    rng.shuffle(stubs)
    return stubs.reshape(-1, 2)


def configuration_model(
    degrees: Union[Sequence[int], np.ndarray],
    *,
    rng: RandomState = None,
    erase_defects: bool = True,
) -> Adjacency:
    """Sample a configuration-model graph with the given degree sequence.

    Parameters
    ----------
    degrees:
        Requested degree of each node.  The sum must be even.
    rng:
        Randomness source.
    erase_defects:
        Drop self-loops and parallel edges after pairing (the erased
        configuration model, default).  When false the defects are still
        dropped — :class:`~repro.graphs.adjacency.Adjacency` only represents
        simple graphs — but a ``ValueError`` is raised if any defect occurred,
        which is useful for tests that want the exact pairing semantics.
    """
    degree_array = np.asarray(degrees, dtype=np.int64)
    if degree_array.ndim != 1 or degree_array.size == 0:
        raise ValueError("degrees must be a non-empty one-dimensional sequence")
    if np.any(degree_array < 0):
        raise ValueError("degrees must be non-negative")
    if int(degree_array.sum()) % 2:
        raise ValueError("sum of degrees must be even")
    generator = make_rng(rng)
    pairs = _pair_stubs(degree_array, generator)
    graph = Adjacency.from_edges(degree_array.size, pairs)
    if not erase_defects:
        realized = int(graph.num_edges)
        requested = int(degree_array.sum() // 2)
        if realized != requested:
            raise ValueError(
                f"pairing produced {requested - realized} defect edge(s) "
                "(self-loops or multi-edges)"
            )
    return graph


def random_regular(
    n: int,
    d: int,
    *,
    rng: RandomState = None,
    require_connected: bool = False,
    max_retries: int = 20,
) -> Adjacency:
    """Sample a (near-)``d``-regular graph via the erased configuration model.

    For the degree regime used throughout the paper (``d >= log^2 n``) the
    erased model deviates from exact ``d``-regularity only by the handful of
    erased defect edges, and the paper's own analysis works with exactly this
    model (multiple edges and loops "treated separately at the end").

    Parameters
    ----------
    n:
        Number of nodes.
    d:
        Requested degree (``n * d`` must be even and ``d < n``).
    rng:
        Randomness source.
    require_connected:
        Resample until the graph is connected (up to ``max_retries`` times).
    max_retries:
        Maximum number of attempts when ``require_connected``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if d < 0 or d >= n:
        raise ValueError(f"d must satisfy 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2:
        raise ValueError("n * d must be even")
    generator = make_rng(rng)
    degrees = np.full(n, d, dtype=np.int64)
    attempts = max(1, max_retries if require_connected else 1)
    last: Optional[Adjacency] = None
    for _ in range(attempts):
        graph = configuration_model(degrees, rng=generator)
        last = graph
        if not require_connected or graph.is_connected():
            return graph
    raise RuntimeError(
        f"failed to sample a connected random regular graph (n={n}, d={d}) "
        f"in {attempts} attempts; last sample had min degree "
        f"{last.min_degree() if last else 'n/a'}"
    )
