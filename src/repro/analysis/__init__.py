"""Analysis toolkit: theoretical bounds, run statistics, sweeps, spreading curves."""

from .ascii_plot import AsciiPlot, Series, plot_experiment_rows, plot_series
from .bounds import (
    broadcast_messages_per_node_complete,
    broadcast_messages_per_node_sparse,
    fast_gossiping_messages_per_node,
    fast_gossiping_rounds,
    fit_constant,
    gossip_lower_bound_messages,
    leader_election_messages_per_node,
    memory_gossiping_messages_per_node,
    memory_gossiping_rounds,
    push_pull_gossip_messages_per_node,
    push_pull_gossip_rounds,
    shape_correlation,
)
from .spreading import GrowthSummary, coverage_growth, phase_breakdown, rounds_to_coverage
from .statistics import (
    SampleStatistics,
    aggregate_records,
    summarize,
    summarize_records,
    welford,
)
from .supervisor import RetryPolicy, SweepReport, TaskFailure, run_supervised_sweep
from .sweep import SweepTask, expand_grid, run_sweep

__all__ = [
    "AsciiPlot",
    "Series",
    "plot_experiment_rows",
    "plot_series",
    "broadcast_messages_per_node_complete",
    "broadcast_messages_per_node_sparse",
    "fast_gossiping_messages_per_node",
    "fast_gossiping_rounds",
    "fit_constant",
    "gossip_lower_bound_messages",
    "leader_election_messages_per_node",
    "memory_gossiping_messages_per_node",
    "memory_gossiping_rounds",
    "push_pull_gossip_messages_per_node",
    "push_pull_gossip_rounds",
    "shape_correlation",
    "GrowthSummary",
    "coverage_growth",
    "phase_breakdown",
    "rounds_to_coverage",
    "SampleStatistics",
    "aggregate_records",
    "summarize",
    "summarize_records",
    "welford",
    "RetryPolicy",
    "SweepReport",
    "TaskFailure",
    "run_supervised_sweep",
    "SweepTask",
    "expand_grid",
    "run_sweep",
]
