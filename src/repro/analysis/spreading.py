"""Spreading-curve analysis of protocol traces.

The theoretical sections of the paper reason about the growth of the informed
set over time (exponential growth in Phase I, ``sqrt(log n)`` multiplication
per Phase II round, double-exponential shrinkage of the uninformed set in the
pull regime).  These helpers extract such growth statistics from recorded
:class:`~repro.engine.trace.SpreadingTrace` objects so that examples and tests
can check the qualitative behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.trace import SpreadingTrace

__all__ = ["GrowthSummary", "coverage_growth", "rounds_to_coverage", "phase_breakdown"]


@dataclass(frozen=True)
class GrowthSummary:
    """Growth statistics of a coverage curve."""

    initial_coverage: float
    final_coverage: float
    rounds: int
    max_round_growth: float
    mean_round_growth: float


def coverage_growth(trace: SpreadingTrace) -> GrowthSummary:
    """Summarise the round-over-round growth of the coverage curve."""
    curve = trace.coverage_curve()
    if curve.size == 0:
        raise ValueError("trace contains no records")
    if curve.size == 1:
        return GrowthSummary(float(curve[0]), float(curve[0]), 1, 1.0, 1.0)
    previous = np.maximum(curve[:-1], 1e-12)
    ratios = curve[1:] / previous
    return GrowthSummary(
        initial_coverage=float(curve[0]),
        final_coverage=float(curve[-1]),
        rounds=int(curve.size),
        max_round_growth=float(ratios.max()),
        mean_round_growth=float(ratios.mean()),
    )


def rounds_to_coverage(trace: SpreadingTrace, threshold: float) -> Optional[int]:
    """First recorded round at which coverage reaches ``threshold`` (or None)."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    for record in trace.records:
        if record.coverage >= threshold:
            return record.round_index
    return None


def phase_breakdown(trace: SpreadingTrace) -> Dict[str, Dict[str, float]]:
    """Coverage reached at the end of each phase, keyed by phase name."""
    out: Dict[str, Dict[str, float]] = {}
    for record in trace.records:
        out[record.phase] = {
            "last_round": float(record.round_index),
            "coverage": float(record.coverage),
            "fully_informed_nodes": float(record.fully_informed_nodes),
        }
    return out
