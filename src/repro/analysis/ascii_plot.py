"""Dependency-free ASCII plotting of experiment series.

The original paper presents its results as line plots; this reproduction runs
in terminals and CI logs where matplotlib may not be available, so a small
character-based plotter renders the same series directly into the benchmark
output and the CLI.  It supports multiple named series on a shared axis,
optional logarithmic x scaling (the paper's Figure 1 uses a log-x axis) and is
deliberately simple: one character cell per (column, row), series markers
assigned in order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Series", "AsciiPlot", "plot_series", "plot_experiment_rows"]

#: Markers assigned to series in the order they are added.
_MARKERS = "*o+x#@%&"


@dataclass
class Series:
    """One named data series of (x, y) points."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)


class AsciiPlot:
    """A fixed-size character canvas onto which series are drawn.

    Parameters
    ----------
    width / height:
        Plot area size in characters (axes and labels are added around it).
    log_x:
        Use a base-2 logarithmic x axis (appropriate for graph-size sweeps).
    title:
        Optional plot title.
    y_label / x_label:
        Axis captions printed around the canvas.
    """

    def __init__(
        self,
        width: int = 60,
        height: int = 18,
        *,
        log_x: bool = False,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
    ) -> None:
        if width < 10 or height < 4:
            raise ValueError("plot area must be at least 10x4 characters")
        self.width = int(width)
        self.height = int(height)
        self.log_x = bool(log_x)
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: List[Series] = []

    # ------------------------------------------------------------------ #
    def add_series(self, label: str, xs: Sequence[float], ys: Sequence[float]) -> Series:
        """Add a named series; returns the stored :class:`Series`."""
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal lengths")
        if len(self.series) >= len(_MARKERS):
            raise ValueError(f"at most {len(_MARKERS)} series supported")
        series = Series(label=label, xs=xs, ys=ys)
        self.series.append(series)
        return series

    # ------------------------------------------------------------------ #
    def _x_transform(self, x: float) -> float:
        if self.log_x:
            return math.log2(max(x, 1e-12))
        return x

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [self._x_transform(x) for s in self.series for x in s.xs]
        ys = [y for s in self.series for y in s.ys]
        if not xs:
            raise ValueError("cannot render an empty plot")
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if math.isclose(x_min, x_max):
            x_min, x_max = x_min - 0.5, x_max + 0.5
        if math.isclose(y_min, y_max):
            y_min, y_max = y_min - 0.5, y_max + 0.5
        # Always include zero on the y axis when close, for honest scaling.
        if y_min > 0 and y_min < 0.25 * y_max:
            y_min = 0.0
        return x_min, x_max, y_min, y_max

    def render(self) -> str:
        """Render the plot as a multi-line string."""
        if not self.series:
            raise ValueError("cannot render an empty plot")
        x_min, x_max, y_min, y_max = self._bounds()
        canvas = [[" "] * self.width for _ in range(self.height)]

        def to_col(x: float) -> int:
            frac = (self._x_transform(x) - x_min) / (x_max - x_min)
            return min(self.width - 1, max(0, int(round(frac * (self.width - 1)))))

        def to_row(y: float) -> int:
            frac = (y - y_min) / (y_max - y_min)
            return min(self.height - 1, max(0, int(round((1.0 - frac) * (self.height - 1)))))

        for index, series in enumerate(self.series):
            marker = _MARKERS[index]
            for x, y in zip(series.xs, series.ys):
                canvas[to_row(y)][to_col(x)] = marker

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        if self.y_label:
            lines.append(f"[y: {self.y_label}]")
        top_label = f"{y_max:.3g}"
        bottom_label = f"{y_min:.3g}"
        gutter = max(len(top_label), len(bottom_label)) + 1
        for row_index, row in enumerate(canvas):
            if row_index == 0:
                prefix = top_label.rjust(gutter)
            elif row_index == self.height - 1:
                prefix = bottom_label.rjust(gutter)
            else:
                prefix = " " * gutter
            lines.append(f"{prefix}|{''.join(row)}")
        lines.append(" " * gutter + "+" + "-" * self.width)
        left = f"{(2 ** x_min if self.log_x else x_min):.3g}"
        right = f"{(2 ** x_max if self.log_x else x_max):.3g}"
        axis_line = " " * (gutter + 1) + left + " " * max(1, self.width - len(left) - len(right)) + right
        lines.append(axis_line)
        if self.x_label:
            lines.append(f"[x: {self.x_label}{' (log scale)' if self.log_x else ''}]")
        legend = "  ".join(
            f"{_MARKERS[i]} {series.label}" for i, series in enumerate(self.series)
        )
        lines.append(f"legend: {legend}")
        return "\n".join(lines)


def plot_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 18,
    log_x: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render a mapping ``label -> [(x, y), ...]`` as an ASCII plot."""
    plot = AsciiPlot(
        width, height, log_x=log_x, title=title, x_label=x_label, y_label=y_label
    )
    for label, points in series.items():
        if points:
            xs, ys = zip(*points)
        else:
            xs, ys = (), ()
        plot.add_series(label, xs, ys)
    return plot.render()


def plot_experiment_rows(
    rows: Sequence[Mapping[str, object]],
    *,
    x: str,
    y: str,
    group_by: Optional[str] = None,
    log_x: bool = True,
    title: str = "",
) -> str:
    """Plot aggregated experiment rows (as produced by the harness).

    Parameters
    ----------
    rows:
        Aggregated experiment rows.
    x / y:
        Column names for the axes.
    group_by:
        Optional column whose distinct values become separate series
        (e.g. ``"protocol"`` for a Figure 1-style plot).
    log_x:
        Use a logarithmic x axis.
    title:
        Plot title.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        label = str(row[group_by]) if group_by else y
        series.setdefault(label, []).append((float(row[x]), float(row[y])))
    for points in series.values():
        points.sort(key=lambda p: p[0])
    return plot_series(
        series, log_x=log_x, title=title, x_label=x, y_label=y
    )
