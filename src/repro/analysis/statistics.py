"""Statistics over repeated protocol runs.

Every experiment repeats each configuration a few times with independent
seeds; this module aggregates the repetitions into means, standard deviations
and normal-approximation confidence intervals, which is what the experiment
reports print next to the paper's reference values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "SampleStatistics",
    "aggregate_records",
    "summarize",
    "summarize_records",
    "welford",
]


@dataclass(frozen=True)
class SampleStatistics:
    """Summary of a sample of scalar measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval of the mean."""
        if self.count <= 1:
            return (self.mean, self.mean)
        half = z * self.std / math.sqrt(self.count)
        return (self.mean - half, self.mean + half)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting."""
        low, high = self.confidence_interval()
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": low,
            "ci_high": high,
        }


def summarize(values: Iterable[float]) -> SampleStatistics:
    """Compute :class:`SampleStatistics` for ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SampleStatistics(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def summarize_records(
    records: Sequence[Mapping[str, object]], keys: Sequence[str]
) -> Dict[str, SampleStatistics]:
    """Summarise the named numeric fields across a sequence of record dicts."""
    out: Dict[str, SampleStatistics] = {}
    for key in keys:
        values = [float(r[key]) for r in records if key in r and r[key] is not None]
        if values:
            out[key] = summarize(values)
    return out


def aggregate_records(
    records: Sequence[Mapping[str, Any]],
    group_by: Sequence[str],
    metrics: Sequence[str],
) -> List[Dict[str, Any]]:
    """Group per-run records and average the named metrics within each group.

    The output row contains the group keys, ``<metric>`` (mean),
    ``<metric>_std`` and ``repetitions``.  Groups appear in first-seen
    (record) order.  This single implementation backs both the experiment
    harness and the store's query index, so scan-served and index-served
    aggregates are computed by literally the same code.
    """
    groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
    order: List[Tuple] = []
    for record in records:
        key = tuple(record[k] for k in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)
    rows: List[Dict[str, Any]] = []
    for key in order:
        members = groups[key]
        row: Dict[str, Any] = {k: v for k, v in zip(group_by, key)}
        row["repetitions"] = len(members)
        for metric in metrics:
            values = [float(m[metric]) for m in members if metric in m and m[metric] is not None]
            if not values:
                continue
            stats = summarize(values)
            row[metric] = stats.mean
            row[f"{metric}_std"] = stats.std
        rows.append(row)
    return rows


def welford(values: Iterable[float]) -> SampleStatistics:
    """Streaming (Welford) mean/variance — numerically stable for long streams.

    Provided for callers that cannot hold all measurements in memory (e.g.
    per-round traces of very long runs); equivalent to :func:`summarize`.
    """
    count = 0
    mean = 0.0
    m2 = 0.0
    minimum = math.inf
    maximum = -math.inf
    for value in values:
        count += 1
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
        minimum = min(minimum, value)
        maximum = max(maximum, value)
    if count == 0:
        raise ValueError("cannot summarise an empty sample")
    variance = m2 / (count - 1) if count > 1 else 0.0
    return SampleStatistics(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=minimum,
        maximum=maximum,
    )
