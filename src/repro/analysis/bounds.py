"""Theoretical bounds from the paper, as concrete reference curves.

The experiments compare measured quantities against the asymptotic bounds the
paper proves or cites.  Asymptotic statements do not fix constants, so each
function exposes a ``constant`` parameter; fitted constants are computed by
:func:`fit_constant`, which the experiment reports use to show that a measured
series scales like its predicted shape.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "log2",
    "loglog2",
    "push_pull_gossip_rounds",
    "push_pull_gossip_messages_per_node",
    "fast_gossiping_rounds",
    "fast_gossiping_messages_per_node",
    "memory_gossiping_rounds",
    "memory_gossiping_messages_per_node",
    "leader_election_messages_per_node",
    "broadcast_messages_per_node_complete",
    "broadcast_messages_per_node_sparse",
    "gossip_lower_bound_messages",
    "fit_constant",
    "shape_correlation",
]


def log2(n: float) -> float:
    """Base-2 logarithm guarded for small inputs."""
    return math.log2(max(float(n), 2.0))


def loglog2(n: float) -> float:
    """``log2 log2 n`` guarded to stay at least 1."""
    return max(1.0, math.log2(max(log2(n), 2.0)))


# --------------------------------------------------------------------------- #
# Gossiping bounds (Theorems 1 and 2, and the baseline)
# --------------------------------------------------------------------------- #
def push_pull_gossip_rounds(n: float, constant: float = 1.0) -> float:
    """Plain push–pull gossiping completes in ``Theta(log n)`` rounds."""
    return constant * log2(n)


def push_pull_gossip_messages_per_node(n: float, constant: float = 1.0) -> float:
    """Plain push–pull gossiping sends ``Theta(log n)`` packets per node."""
    return constant * log2(n)


def fast_gossiping_rounds(n: float, constant: float = 1.0) -> float:
    """Theorem 1: ``O(log^2 n / log log n)`` rounds."""
    return constant * log2(n) ** 2 / loglog2(n)


def fast_gossiping_messages_per_node(n: float, constant: float = 1.0) -> float:
    """Theorem 1: ``O(log n / log log n)`` transmissions per node."""
    return constant * log2(n) / loglog2(n)


def memory_gossiping_rounds(n: float, constant: float = 1.0) -> float:
    """Theorem 2: ``O(log n)`` rounds."""
    return constant * log2(n)


def memory_gossiping_messages_per_node(n: float, constant: float = 1.0) -> float:
    """Theorem 2: ``O(1)`` transmissions per node (``O(n)`` total)."""
    return constant


def leader_election_messages_per_node(n: float, constant: float = 1.0) -> float:
    """Algorithm 3: ``O(log log n)`` transmissions per node."""
    return constant * loglog2(n)


# --------------------------------------------------------------------------- #
# Broadcasting background (Karp et al. / Elsässer SPAA'06)
# --------------------------------------------------------------------------- #
def broadcast_messages_per_node_complete(n: float, constant: float = 1.0) -> float:
    """Karp et al.: ``O(log log n)`` transmissions per node on complete graphs."""
    return constant * loglog2(n)


def broadcast_messages_per_node_sparse(n: float, constant: float = 1.0) -> float:
    """Sparse random graphs cannot beat ``Omega(log n / log d * log log n)``-ish
    per-node cost for address-oblivious push–pull broadcasting; we use the
    ``log n`` envelope as the reference shape (Elsässer, SPAA'06)."""
    return constant * log2(n)


def gossip_lower_bound_messages(n: float, constant: float = 1.0) -> float:
    """Berenbrink et al.: any ``O(log n)``-time gossiping needs ``Omega(n log n)``
    transmissions in the random phone call model; expressed per node."""
    return constant * log2(n)


# --------------------------------------------------------------------------- #
# Shape fitting helpers
# --------------------------------------------------------------------------- #
def fit_constant(
    sizes: Sequence[float],
    measured: Sequence[float],
    bound: Callable[[float, float], float],
) -> float:
    """Least-squares constant ``c`` such that ``measured ≈ c * bound(n, 1)``.

    Parameters
    ----------
    sizes:
        Graph sizes of the measurements.
    measured:
        Measured values (same length as ``sizes``).
    bound:
        One of the bound functions in this module.
    """
    sizes_arr = np.asarray(list(sizes), dtype=np.float64)
    measured_arr = np.asarray(list(measured), dtype=np.float64)
    if sizes_arr.size != measured_arr.size or sizes_arr.size == 0:
        raise ValueError("sizes and measured must be equally sized and non-empty")
    shape = np.asarray([bound(float(n), 1.0) for n in sizes_arr], dtype=np.float64)
    denom = float(np.dot(shape, shape))
    if denom == 0.0:
        raise ValueError("bound shape is identically zero on the given sizes")
    return float(np.dot(shape, measured_arr) / denom)


def shape_correlation(
    sizes: Sequence[float],
    measured: Sequence[float],
    bound: Callable[[float, float], float],
) -> float:
    """Pearson correlation between a measured series and a bound shape.

    Values close to 1 indicate the measured series grows like the predicted
    shape; a flat (constant) bound returns ``nan`` because correlation against
    a constant is undefined — callers should then compare the spread instead.
    """
    sizes_arr = np.asarray(list(sizes), dtype=np.float64)
    measured_arr = np.asarray(list(measured), dtype=np.float64)
    shape = np.asarray([bound(float(n), 1.0) for n in sizes_arr], dtype=np.float64)
    if np.allclose(shape, shape[0]) or np.allclose(measured_arr, measured_arr[0]):
        return float("nan")
    return float(np.corrcoef(shape, measured_arr)[0, 1])
