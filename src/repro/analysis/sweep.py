"""Parameter sweeps with streaming, resumable process-based parallelism.

Experiments are embarrassingly parallel across (configuration, repetition)
pairs, so :func:`run_sweep` distributes them over a
:class:`concurrent.futures.ProcessPoolExecutor` when ``n_jobs > 1``.  Work
items must be picklable, which is why the sweep operates on *task functions*
defined at module level plus plain-data task descriptions rather than on
closures.

The scheduler streams completions (``concurrent.futures.wait`` with a bounded
submission window rather than blocking in submission order), reports progress
through a callback, hands every finished record to an ``on_result`` hook the
moment it exists (the result store uses this for incremental persistence), and
propagates the kernel-backend environment (``REPRO_KERNEL_BACKEND``,
``REPRO_KERNEL_THREADS``, and the other ``REPRO_*`` switches) into worker
processes via a pool initializer so sweeps behave identically under the
``fork`` and ``spawn`` start methods.

Seeds are derived from a *stable hash of the configuration key* (not the
configuration's position in the grid), so adding or removing one configuration
never reshuffles the seeds — and therefore the trajectories — of the others.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.rng import derive_seed
from ..io.results import canonical_json

__all__ = [
    "SweepTask",
    "run_sweep",
    "expand_grid",
    "stable_key_hash",
    "canonical_json",
]

#: Called after every completed task with ``(index, task, record)``; may return
#: a replacement record (the store returns the JSON-round-tripped one so the
#: in-memory view matches what resumed runs will load from disk).
ResultHook = Callable[[int, "SweepTask", Dict[str, Any]], Optional[Dict[str, Any]]]

#: Called with ``(done, total)`` after every completed task.
ProgressHook = Callable[[int, int], None]


@dataclass(frozen=True)
class SweepTask:
    """One unit of work in a parameter sweep.

    Attributes
    ----------
    key:
        Arbitrary (hashable, picklable) identifier of the configuration; it is
        copied into the result record.
    params:
        Keyword arguments handed to the task function.
    repetition:
        Index of the repetition for this configuration.
    seed:
        Seed for this (configuration, repetition) pair.
    """

    key: Any
    params: Dict[str, Any]
    repetition: int
    seed: int


def stable_key_hash(key: Any) -> int:
    """Map a configuration key to a stable 63-bit integer.

    Stable across processes and Python versions (unlike the salted builtin
    ``hash``): the key is canonically JSON-serialized and SHA-256 hashed.
    """
    digest = hashlib.sha256(canonical_json(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**63 - 1)


def expand_grid(
    configurations: Sequence[Tuple[Any, Dict[str, Any]]],
    repetitions: int,
    base_seed: Optional[int],
) -> List[SweepTask]:
    """Expand (key, params) configurations into per-repetition tasks.

    Seeds are derived deterministically from ``base_seed``, a stable hash of
    the configuration *key* and the repetition index.  Because the key (not
    the grid position) identifies the configuration, inserting or removing a
    configuration leaves every other configuration's seeds — and therefore
    its simulated trajectories — untouched.
    """
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    tasks: List[SweepTask] = []
    for key, params in configurations:
        key_hash = stable_key_hash(key)
        for repetition in range(repetitions):
            seed = derive_seed(base_seed, key_hash, repetition)
            tasks.append(
                SweepTask(key=key, params=dict(params), repetition=repetition, seed=seed)
            )
    return tasks


def _run_one(task_fn: Callable[[SweepTask], Dict[str, Any]], task: SweepTask) -> Dict[str, Any]:
    record = task_fn(task)
    record.setdefault("key", task.key)
    record.setdefault("repetition", task.repetition)
    record.setdefault("seed", task.seed)
    return record


def _capture_worker_env() -> Dict[str, str]:
    """Snapshot the ``REPRO_*`` switches that must reach worker processes."""
    return {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}


def _worker_initializer(env: Dict[str, str]) -> None:
    """Install the parent's kernel-backend environment in a pool worker.

    Under the ``fork`` start method the environment is inherited anyway; under
    ``spawn`` this runs before any backend is resolved, so
    ``REPRO_KERNEL_BACKEND`` / ``REPRO_KERNEL_THREADS`` (and the kill
    switches) select the same kernels in workers as in the parent.
    """
    os.environ.update(env)


def _notify(
    records: List[Optional[Dict[str, Any]]],
    index: int,
    task: SweepTask,
    record: Dict[str, Any],
    on_result: Optional[ResultHook],
) -> None:
    if on_result is not None:
        replacement = on_result(index, task, record)
        if replacement is not None:
            record = replacement
    records[index] = record


def run_sweep(
    task_fn: Callable[[SweepTask], Dict[str, Any]],
    tasks: Sequence[SweepTask],
    *,
    n_jobs: int = 1,
    progress: Optional[ProgressHook] = None,
    on_result: Optional[ResultHook] = None,
    window: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Execute ``task_fn`` for every task, serially or over a process pool.

    Parameters
    ----------
    task_fn:
        A module-level function mapping a :class:`SweepTask` to a plain-dict
        result record (it must be picklable for ``n_jobs > 1``).
    tasks:
        The work items, typically produced by :func:`expand_grid`.
    n_jobs:
        Number of worker processes; ``1`` (default) runs in-process, which is
        also the fallback whenever only one task exists.
    progress:
        Optional ``(done, total)`` callback, fired after every completion in
        completion order.
    on_result:
        Optional ``(index, task, record)`` hook fired the moment a task
        finishes (before the sweep as a whole completes); a non-``None``
        return value replaces the record in the returned list.  The result
        store uses this for incremental JSONL persistence.
    window:
        Maximum number of tasks submitted to the pool at once (chunked
        submission); defaults to ``max(4 * n_jobs, 16)``.  Bounding the
        window keeps memory flat for very large grids.

    Returns
    -------
    list of dict
        One record per task, in task order (regardless of completion order).

    Raises
    ------
    Exception
        The first task error is re-raised immediately (fail-fast); pending
        work is cancelled.
    """
    tasks = list(tasks)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be at least 1, got {n_jobs}")
    total = len(tasks)
    records: List[Optional[Dict[str, Any]]] = [None] * total
    if n_jobs == 1 or total <= 1:
        for index, task in enumerate(tasks):
            _notify(records, index, task, _run_one(task_fn, task), on_result)
            if progress is not None:
                progress(index + 1, total)
        return [record for record in records if record is not None]

    if window is None:
        window = max(4 * n_jobs, 16)
    if window < 1:
        raise ValueError(f"window must be at least 1, got {window}")

    done_count = 0
    pending_iter = iter(enumerate(tasks))
    with ProcessPoolExecutor(
        max_workers=n_jobs,
        initializer=_worker_initializer,
        initargs=(_capture_worker_env(),),
    ) as pool:
        in_flight: Dict[Any, int] = {}

        def submit_next() -> bool:
            try:
                index, task = next(pending_iter)
            except StopIteration:
                return False
            in_flight[pool.submit(_run_one, task_fn, task)] = index
            return True

        for _ in range(min(window, total)):
            submit_next()
        try:
            while in_flight:
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = in_flight.pop(future)
                    # .result() re-raises worker exceptions -> fail-fast.
                    _notify(records, index, tasks[index], future.result(), on_result)
                    done_count += 1
                    if progress is not None:
                        progress(done_count, total)
                    submit_next()
        except BaseException:
            for future in in_flight:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return [record for record in records if record is not None]
