"""Parameter sweeps with optional process-based parallelism.

Experiments are embarrassingly parallel across (configuration, repetition)
pairs, so :func:`run_sweep` distributes them over a
:class:`concurrent.futures.ProcessPoolExecutor` when ``n_jobs > 1``.  Work
items must be picklable, which is why the sweep operates on *task functions*
defined at module level plus plain-data task descriptions rather than on
closures.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.rng import derive_seed

__all__ = ["SweepTask", "run_sweep", "expand_grid"]


@dataclass(frozen=True)
class SweepTask:
    """One unit of work in a parameter sweep.

    Attributes
    ----------
    key:
        Arbitrary (hashable, picklable) identifier of the configuration; it is
        copied into the result record.
    params:
        Keyword arguments handed to the task function.
    repetition:
        Index of the repetition for this configuration.
    seed:
        Seed for this (configuration, repetition) pair.
    """

    key: Any
    params: Dict[str, Any]
    repetition: int
    seed: int


def expand_grid(
    configurations: Sequence[Tuple[Any, Dict[str, Any]]],
    repetitions: int,
    base_seed: Optional[int],
) -> List[SweepTask]:
    """Expand (key, params) configurations into per-repetition tasks.

    Seeds are derived deterministically from ``base_seed`` and the task
    coordinates so that re-running the sweep reproduces exactly the same runs.
    """
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    tasks: List[SweepTask] = []
    for config_index, (key, params) in enumerate(configurations):
        for repetition in range(repetitions):
            seed = derive_seed(base_seed, config_index, repetition)
            tasks.append(
                SweepTask(key=key, params=dict(params), repetition=repetition, seed=seed)
            )
    return tasks


def _run_one(task_fn: Callable[[SweepTask], Dict[str, Any]], task: SweepTask) -> Dict[str, Any]:
    record = task_fn(task)
    record.setdefault("key", task.key)
    record.setdefault("repetition", task.repetition)
    record.setdefault("seed", task.seed)
    return record


def run_sweep(
    task_fn: Callable[[SweepTask], Dict[str, Any]],
    tasks: Sequence[SweepTask],
    *,
    n_jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Execute ``task_fn`` for every task, serially or over a process pool.

    Parameters
    ----------
    task_fn:
        A module-level function mapping a :class:`SweepTask` to a plain-dict
        result record (it must be picklable for ``n_jobs > 1``).
    tasks:
        The work items, typically produced by :func:`expand_grid`.
    n_jobs:
        Number of worker processes; ``1`` (default) runs in-process, which is
        also the fallback whenever only one task exists.

    Returns
    -------
    list of dict
        One record per task, in task order.
    """
    tasks = list(tasks)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be at least 1, got {n_jobs}")
    if n_jobs == 1 or len(tasks) <= 1:
        return [_run_one(task_fn, task) for task in tasks]
    records: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        futures = {
            pool.submit(_run_one, task_fn, task): index for index, task in enumerate(tasks)
        }
        for future, index in futures.items():
            records[index] = future.result()
    return [record for record in records if record is not None]
