"""Fault-tolerant supervision around the streaming sweep scheduler.

:func:`repro.analysis.sweep.run_sweep` is deliberately fail-fast: the first
worker exception aborts the whole sweep.  That is the right default for unit
tests, but a sweep run as a long background job must *survive* its execution
layer the way the paper's gossip survives ``f = n^epsilon`` node failures.
:func:`run_supervised_sweep` wraps the same chunked-submission /
completion-streaming scheduler with:

* **per-task wall-clock timeouts** — an overdue task's worker pool is killed
  and respawned; the task is charged a ``timeout`` attempt, innocent
  in-flight tasks are requeued without charge,
* **bounded retry with exponential backoff + jitter** — the jitter stream is
  seeded per ``(key, repetition, attempt)`` through
  :func:`repro.engine.rng.derive_seed`, so retry schedules are reproducible,
* **automatic ``BrokenProcessPool`` recovery** — a worker dying (OOM-kill,
  SIGKILL, segfault) respawns the pool and requeues the in-flight tasks
  (attribution is impossible, so every in-flight task is charged one
  ``worker-crash`` attempt; repeated pool deaths therefore still terminate),
* **poison-task quarantine** — a task that keeps failing past
  ``max_retries`` becomes a structured :class:`TaskFailure` (surfaced through
  the ``on_failure`` hook and the final report) instead of an exception, so
  one poison configuration cannot abort the rest of the grid, and
* a final :class:`SweepReport` distinguishing ok / retried / quarantined
  work, making a *degraded* run an explicit, machine-readable outcome.

Execution always goes through a :class:`~concurrent.futures.ProcessPoolExecutor`
(even for ``n_jobs=1``): process isolation is what makes kill/timeout
recovery possible at all, and task functions are already required to be
picklable by the sweep contract.  Deterministic chaos injection
(:mod:`repro.engine.chaos`) plugs in via the ``chaos`` argument; fault
targets are matched by the result store's ``(config_hash, repetition)`` pair
identity.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.chaos import Fault, FaultPlan, inject_worker_faults
from ..engine.rng import derive_seed
from ..io.store import config_hash
from .sweep import (
    ProgressHook,
    ResultHook,
    SweepTask,
    _capture_worker_env,
    _notify,
    _run_one,
    _worker_initializer,
    stable_key_hash,
)

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "SweepReport",
    "run_supervised_sweep",
]

#: Called when a task is quarantined, with ``(index, task, failure)``.
FailureHook = Callable[[int, SweepTask, "TaskFailure"], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry / timeout budget of a supervised sweep.

    Attributes
    ----------
    max_retries:
        Extra attempts granted after the first failure; a task is quarantined
        once it has failed ``max_retries + 1`` times.
    timeout:
        Per-task wall-clock limit in seconds (``None`` disables timeouts).
        Enforced by killing and respawning the worker pool, so it also reaps
        genuinely hung workers.
    backoff_base / backoff_factor / backoff_cap:
        Exponential backoff before a retry: attempt ``a`` (1-based) waits
        ``min(cap, base * factor**(a-1))`` seconds, scaled by jitter.
    jitter:
        Relative jitter amplitude in ``[0, 1]``: the delay is multiplied by a
        factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    seed:
        Seed of the jitter stream.  Jitter is derived per
        ``(key, repetition, attempt)`` via :func:`derive_seed`, so the full
        retry schedule of a sweep is reproducible.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    jitter: float = 0.5
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")

    def delay_for(self, task: SweepTask, attempt: int) -> float:
        """Deterministic backoff delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be at least 1, got {attempt}")
        delay = min(self.backoff_cap, self.backoff_base * self.backoff_factor ** (attempt - 1))
        if self.jitter and delay > 0:
            import random

            unit = random.Random(
                derive_seed(self.seed, stable_key_hash(task.key), task.repetition, attempt)
            ).random()
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, delay)


@dataclass
class TaskFailure:
    """Structured record of a quarantined (poison) task.

    Persisted to the result store as a ``failure`` entry instead of raising,
    so a degraded sweep stays machine-readable and resumable.
    """

    index: int
    key: Any
    repetition: int
    seed: int
    attempts: int
    kind: str
    message: str
    history: List[Dict[str, Any]] = field(default_factory=list)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "repetition": self.repetition,
            "seed": self.seed,
            "attempts": self.attempts,
            "kind": self.kind,
            "message": self.message,
            "history": list(self.history),
        }


@dataclass
class SweepReport:
    """Machine-readable outcome of a supervised sweep.

    ``ok + len(quarantined) == total`` when the sweep ran to the end; a
    nonempty ``quarantined`` list marks the run as *degraded* (the CLI exits
    nonzero on it) without having aborted the healthy part of the grid.

    ``cache_hits`` / ``executed`` are filled in by the read-through cache
    layer of :func:`repro.experiments.scenarios.run_scenario` when the sweep
    runs against a result store: ``cache_hits`` pairs were served from the
    store without any simulation and ``executed`` (== ``total``) went
    through the scheduler.
    """

    total: int = 0
    ok: int = 0
    retried: int = 0
    quarantined: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    pool_restarts: int = 0
    cache_hits: int = 0
    executed: int = 0

    @property
    def degraded(self) -> bool:
        """Whether any task ended up quarantined."""
        return bool(self.quarantined)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "ok": self.ok,
            "retried": self.retried,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "pool_restarts": self.pool_restarts,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "quarantined": [f.to_jsonable() for f in self.quarantined],
        }

    def summary(self) -> str:
        line = (
            f"{self.ok}/{self.total} ok, {self.retried} retried "
            f"({self.retries} retries), {len(self.quarantined)} quarantined"
        )
        extras = []
        if self.cache_hits:
            extras.append(f"{self.cache_hits} cache hits")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.worker_crashes:
            extras.append(f"{self.worker_crashes} worker crashes")
        if self.pool_restarts:
            extras.append(f"{self.pool_restarts} pool restarts")
        return line + (f" [{', '.join(extras)}]" if extras else "")


def _supervised_attempt(
    task_fn: Callable[[SweepTask], Dict[str, Any]],
    task: SweepTask,
    attempt: int,
    faults: Tuple[Fault, ...],
) -> Dict[str, Any]:
    """Worker-side wrapper: fire scheduled chaos faults, then run the task."""
    if faults:
        inject_worker_faults(faults, attempt)
    return _run_one(task_fn, task)


@dataclass
class _TaskState:
    index: int
    task: SweepTask
    attempts: int = 0
    history: List[Dict[str, Any]] = field(default_factory=list)


class _Supervisor:
    """One supervised sweep execution (see :func:`run_supervised_sweep`)."""

    def __init__(
        self,
        task_fn: Callable[[SweepTask], Dict[str, Any]],
        tasks: Sequence[SweepTask],
        *,
        n_jobs: int,
        policy: RetryPolicy,
        chaos: Optional[FaultPlan],
        pairs: Optional[Sequence[Tuple[str, int]]],
        progress: Optional[ProgressHook],
        on_result: Optional[ResultHook],
        on_failure: Optional[FailureHook],
        window: Optional[int],
    ):
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be at least 1, got {n_jobs}")
        self.task_fn = task_fn
        self.tasks = list(tasks)
        self.total = len(self.tasks)
        self.n_jobs = n_jobs
        self.policy = policy
        self.progress = progress
        self.on_result = on_result
        self.on_failure = on_failure
        self.window = window if window is not None else max(4 * n_jobs, 16)
        if self.window < 1:
            raise ValueError(f"window must be at least 1, got {self.window}")
        if pairs is None:
            pairs = [(config_hash(t.key, t.params), t.repetition) for t in self.tasks]
        elif len(pairs) != self.total:
            raise ValueError("pairs must align one-to-one with tasks")
        self.worker_faults: List[Tuple[Fault, ...]] = [
            chaos.worker_faults(pair) if chaos is not None else ()
            for pair in pairs
        ]
        self.records: List[Optional[Dict[str, Any]]] = [None] * self.total
        self.report = SweepReport(total=self.total)
        self.env = _capture_worker_env()
        self.ready = deque(_TaskState(i, t) for i, t in enumerate(self.tasks))
        #: (not_before, index, state) heap of retries waiting out their backoff.
        self.delayed: List[Tuple[float, int, _TaskState]] = []
        self.in_flight: Dict[Any, _TaskState] = {}
        self.deadlines: Dict[Any, float] = {}
        self.settled = 0
        self.pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_jobs,
            initializer=_worker_initializer,
            initargs=(self.env,),
        )

    def _discard_pool(self, kill: bool) -> None:
        pool = self.pool
        if pool is None:
            return
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.kill()
                except OSError:  # pragma: no cover - process already gone
                    pass
        try:
            # wait=True joins the executor's management thread (the workers
            # are already dead after a kill, so this returns promptly) —
            # leaving it dangling trips noisy atexit errors.
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        self.pool = None

    def _restart_pool(self, kill: bool) -> None:
        self._discard_pool(kill)
        self.in_flight.clear()
        self.deadlines.clear()
        self.pool = self._new_pool()
        self.report.pool_restarts += 1

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _submit(self, state: _TaskState) -> None:
        future = self.pool.submit(
            _supervised_attempt,
            self.task_fn,
            state.task,
            state.attempts,
            self.worker_faults[state.index],
        )
        self.in_flight[future] = state
        if self.policy.timeout is not None:
            self.deadlines[future] = time.monotonic() + self.policy.timeout

    def _fill(self) -> None:
        while len(self.in_flight) < self.window:
            now = time.monotonic()
            if self.delayed and self.delayed[0][0] <= now:
                state = heapq.heappop(self.delayed)[2]
            elif self.ready:
                state = self.ready.popleft()
            else:
                break
            self._submit(state)

    def _settle_ok(self, state: _TaskState, record: Dict[str, Any]) -> None:
        if state.attempts:
            self.report.retried += 1
        _notify(self.records, state.index, state.task, record, self.on_result)
        self.report.ok += 1
        self.settled += 1
        if self.progress is not None:
            self.progress(self.settled, self.total)

    def _fail_attempt(self, state: _TaskState, kind: str, message: str) -> None:
        state.history.append({"attempt": state.attempts, "kind": kind, "message": message})
        state.attempts += 1
        if state.attempts > self.policy.max_retries:
            failure = TaskFailure(
                index=state.index,
                key=state.task.key,
                repetition=state.task.repetition,
                seed=state.task.seed,
                attempts=state.attempts,
                kind=kind,
                message=message,
                history=list(state.history),
            )
            self.report.quarantined.append(failure)
            if self.on_failure is not None:
                self.on_failure(state.index, state.task, failure)
            self.settled += 1
            if self.progress is not None:
                self.progress(self.settled, self.total)
        else:
            self.report.retries += 1
            delay = self.policy.delay_for(state.task, state.attempts)
            heapq.heappush(self.delayed, (time.monotonic() + delay, state.index, state))

    def _requeue_uncharged(self) -> None:
        """Requeue every in-flight task unchanged, preserving index order."""
        for state in sorted(self.in_flight.values(), key=lambda s: s.index, reverse=True):
            self.ready.appendleft(state)
        self.in_flight.clear()
        self.deadlines.clear()

    def _wait_timeout(self) -> Optional[float]:
        now = time.monotonic()
        horizons = []
        if self.deadlines:
            horizons.append(min(self.deadlines.values()))
        if self.delayed and len(self.in_flight) < self.window:
            horizons.append(self.delayed[0][0])
        if not horizons:
            return None
        return max(0.0, min(horizons) - now)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> Tuple[List[Optional[Dict[str, Any]]], SweepReport]:
        if self.total == 0:
            return self.records, self.report
        self.pool = self._new_pool()
        completed_normally = False
        try:
            while self.ready or self.delayed or self.in_flight:
                self._fill()
                if not self.in_flight:
                    # Only backoff timers remain: sleep until the earliest.
                    pause = max(0.0, self.delayed[0][0] - time.monotonic())
                    time.sleep(min(pause, 0.5))
                    continue
                finished, _ = wait(
                    set(self.in_flight),
                    timeout=self._wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                for future in sorted(finished, key=lambda f: self.in_flight[f].index):
                    state = self.in_flight.pop(future)
                    self.deadlines.pop(future, None)
                    try:
                        record = future.result()
                    except BrokenProcessPool as error:
                        pool_broken = True
                        self.report.worker_crashes += 1
                        self._fail_attempt(
                            state, "worker-crash", str(error) or "worker process died"
                        )
                    except Exception as error:
                        self._fail_attempt(
                            state, "error", f"{type(error).__name__}: {error}"
                        )
                    else:
                        self._settle_ok(state, record)
                if pool_broken:
                    # The whole pool is dead; every still-in-flight task gets
                    # charged one crash attempt (which worker ran which task
                    # is unknowable) and the pool is respawned.
                    for future in sorted(
                        self.in_flight, key=lambda f: self.in_flight[f].index
                    ):
                        state = self.in_flight[future]
                        self.report.worker_crashes += 1
                        self._fail_attempt(
                            state, "worker-crash", "process pool broke while in flight"
                        )
                    self._restart_pool(kill=True)
                    continue
                now = time.monotonic()
                overdue = [f for f, deadline in self.deadlines.items() if deadline <= now]
                if overdue:
                    for future in sorted(overdue, key=lambda f: self.in_flight[f].index):
                        state = self.in_flight.pop(future)
                        self.deadlines.pop(future, None)
                        self.report.timeouts += 1
                        self._fail_attempt(
                            state,
                            "timeout",
                            f"exceeded {self.policy.timeout}s wall clock; worker killed",
                        )
                    # Timeouts are enforced by killing the pool, so requeue
                    # the innocent in-flight tasks without charging them.
                    self._requeue_uncharged()
                    self._restart_pool(kill=True)
            completed_normally = True
        finally:
            # Normal completion leaves an idle, healthy pool: shut it down
            # gracefully.  On an exceptional exit (e.g. KeyboardInterrupt)
            # kill the workers so chaos hangs or stuck tasks cannot block us.
            self._discard_pool(kill=not completed_normally)
        return self.records, self.report


def run_supervised_sweep(
    task_fn: Callable[[SweepTask], Dict[str, Any]],
    tasks: Sequence[SweepTask],
    *,
    n_jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[FaultPlan] = None,
    pairs: Optional[Sequence[Tuple[str, int]]] = None,
    progress: Optional[ProgressHook] = None,
    on_result: Optional[ResultHook] = None,
    on_failure: Optional[FailureHook] = None,
    window: Optional[int] = None,
) -> Tuple[List[Optional[Dict[str, Any]]], SweepReport]:
    """Execute a sweep under supervision; never raises on task failure.

    Parameters largely mirror :func:`repro.analysis.sweep.run_sweep`; the
    additions:

    policy:
        The :class:`RetryPolicy` (retry budget, backoff, per-task timeout).
    chaos:
        Optional :class:`~repro.engine.chaos.FaultPlan` of injected faults.
    pairs:
        Optional pre-computed ``(config_hash, repetition)`` pair per task
        (chaos target identity); derived from the tasks when omitted.
    on_failure:
        Hook fired with ``(index, task, failure)`` when a task is quarantined
        (the scenario engine persists a structured failure entry here).

    Returns
    -------
    (records, report):
        ``records`` has one entry per task in task order, ``None`` where the
        task was quarantined; ``report`` is the :class:`SweepReport`.
    """
    supervisor = _Supervisor(
        task_fn,
        tasks,
        n_jobs=n_jobs,
        policy=policy or RetryPolicy(),
        chaos=chaos,
        pairs=pairs,
        progress=progress,
        on_result=on_result,
        on_failure=on_failure,
        window=window,
    )
    return supervisor.run()
