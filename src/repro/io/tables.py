"""Plain-text table rendering for experiment reports.

The benchmark harnesses print the rows/series that the paper reports as
figures; a small fixed-width renderer keeps those reports readable in a
terminal and in the captured benchmark output files without any plotting
dependency.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_value", "format_table", "format_records"]


def format_value(value: Any, float_digits: int = 3) -> str:
    """Render a cell value compactly."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.2e}"
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render ``rows`` as a fixed-width text table."""
    rendered = [[format_value(cell, float_digits) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    *,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render record dicts as a table using the given column order."""
    rows = [[record.get(column) for column in columns] for record in records]
    return format_table(columns, rows, title=title, float_digits=float_digits)
