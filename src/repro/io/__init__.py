"""Result persistence (JSON/CSV) and plain-text table rendering."""

from .results import load_csv, load_json, save_csv, save_json, to_jsonable
from .tables import format_records, format_table, format_value

__all__ = [
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
    "to_jsonable",
    "format_records",
    "format_table",
    "format_value",
]
