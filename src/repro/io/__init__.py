"""Result persistence (JSON/CSV/JSONL store) and plain-text table rendering."""

from .results import (
    canonical_json,
    load_csv,
    load_json,
    save_csv,
    save_json,
    to_jsonable,
)
from .index import QueryIndex, index_available
from .store import ResultStore, StoreEntry, config_hash
from .tables import format_records, format_table, format_value

__all__ = [
    "QueryIndex",
    "index_available",
    "canonical_json",
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
    "to_jsonable",
    "ResultStore",
    "StoreEntry",
    "config_hash",
    "format_records",
    "format_table",
    "format_value",
]
