"""Compacted SQLite query index over the JSONL result store.

This is the read side of a CQRS split.  The append-only JSONL files of
:class:`repro.io.store.ResultStore` remain the single source of truth; this
module maintains a derived ``index.sqlite`` next to them so that aggregate
queries — completed-pair views, percentile statistics, grouped means,
CSV/JSON exports — are served from indexed rows instead of re-parsing JSONL.

Consistency model
-----------------
* **Incremental behind append.**  ``ResultStore._append_entry`` calls
  :meth:`QueryIndex.note_append` while still holding the per-append
  ``flock``, so the common path indexes exactly the one new line without
  touching the rest of the file.
* **Prefix-CRC invalidation.**  For every scenario the index stores
  ``(indexed_end, prefix_crc)`` — the byte length of the indexed prefix and
  the rolling CRC32 of those bytes.  Every read-side refresh re-checksums
  the prefix; a mismatch (in-place corruption, rewrite, truncation) drops
  the scenario's rows and rebuilds them from JSONL.  The index can therefore
  always be deleted or rebuilt with no data loss.
* **Same validity rules as the scanner.**  Lines are parsed with the store's
  own ``_parse_line``: CRC-corrupt and malformed lines are skipped (never
  indexed, never satisfy a query), crc-less legacy lines are accepted, and a
  partial trailing line stays unindexed until completed or repaired.
* **Failure entries are quarantined.**  ``failure`` rows are indexed (for
  diagnostics) but the completed view returns, for each
  ``(config, repetition)`` pair, only the *latest* ``record`` entry —
  mirroring ``ResultStore.completed`` exactly: a failure never satisfies a
  cache hit, and a later record supersedes an earlier failure.

Compaction layer
----------------
Scalar record fields (ints, floats, bools, strings, nulls) are unpacked
into a ``fields`` table so numeric statistics and grouped aggregates run
without JSON-decoding full records.  Non-scalar fields (lists, dicts) live
only in the canonical-JSON body and are treated as absent by field-based
aggregates — the same behaviour ``aggregate_records`` has for missing
metrics.  Full records (``query``/``export``) are decoded from the stored
canonical JSON, so they are bit-identical to a JSONL scan.
"""

from __future__ import annotations

import json
import math
import os
import zlib
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

try:  # stdlib, but some minimal builds omit it; the store degrades to scans.
    import sqlite3
except ImportError:  # pragma: no cover - sqlite-less python build
    sqlite3 = None  # type: ignore[assignment]

from .results import canonical_json, save_csv, save_json
from .store import Pair, ResultStore, StoreEntry, _parse_line

__all__ = ["QueryIndex", "index_available", "nearest_rank"]

#: Bump when the table layout changes; a mismatched on-disk index is dropped
#: and lazily rebuilt from JSONL (the index is always disposable).
_SCHEMA_VERSION = "1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS files(
    scenario TEXT PRIMARY KEY,
    indexed_end INTEGER NOT NULL,
    prefix_crc INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS entries(
    scenario TEXT NOT NULL,
    seq INTEGER NOT NULL,
    config TEXT NOT NULL,
    repetition INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    kind TEXT NOT NULL,
    key_json TEXT NOT NULL,
    body_json TEXT NOT NULL,
    PRIMARY KEY (scenario, seq)
);
CREATE INDEX IF NOT EXISTS entries_pair ON entries(scenario, config, repetition);
CREATE TABLE IF NOT EXISTS fields(
    scenario TEXT NOT NULL,
    seq INTEGER NOT NULL,
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    ival INTEGER,
    rval REAL,
    tval TEXT,
    PRIMARY KEY (scenario, seq, name)
);
CREATE INDEX IF NOT EXISTS fields_name ON fields(scenario, name);
"""

#: SQLite INTEGER is a signed 64-bit word; wider Python ints stay JSON-only.
_INT64_MAX = 2**63 - 1

#: Completed view: for each (config, repetition) pair the latest record
#: entry, in pair-sorted order (hex config hashes sort identically as TEXT
#: and as Python str).  Failure entries never appear here, and a record
#: always supersedes earlier failures for its pair — the scanner's rules.
_COMPLETED_SQL = """
SELECT config, repetition, seed, body_json, seq FROM entries
WHERE scenario = :s AND kind = 'record' AND seq IN (
    SELECT MAX(seq) FROM entries
    WHERE scenario = :s AND kind = 'record'
    GROUP BY config, repetition
)
ORDER BY config, repetition
"""

_COMPLETED_SEQS_SQL = """
SELECT MAX(seq) FROM entries
WHERE scenario = :s AND kind = 'record'
GROUP BY config, repetition
"""


def index_available() -> bool:
    """Whether the sqlite3 module is importable on this interpreter."""
    return sqlite3 is not None


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: smallest value with >= q% of mass at or below.

    ``sorted_values`` must be non-empty and ascending.  ``q`` is clamped to
    [0, 100]; q=0 returns the minimum, q=100 the maximum.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if q <= 0:
        return sorted_values[0]
    rank = math.ceil(min(q, 100.0) / 100.0 * len(sorted_values))
    return sorted_values[min(len(sorted_values), max(rank, 1)) - 1]


def _decode_field(kind: str, ival: Optional[int], rval: Optional[float], tval: Optional[str]) -> Any:
    if kind == "i":
        return int(ival)  # type: ignore[arg-type]
    if kind == "f":
        return float(rval)  # type: ignore[arg-type]
    if kind == "b":
        return bool(ival)
    if kind == "s":
        return tval
    return None  # "n"


class QueryIndex:
    """Derived SQLite index over one :class:`ResultStore` directory.

    Not usually constructed directly — use :attr:`ResultStore.query_index`,
    which shares the store's lock discipline.  All read methods refresh the
    scenario first (prefix-CRC check, catch-up parse of new bytes), so
    results always reflect the current JSONL contents, including external
    appends, corruption and truncation.
    """

    def __init__(self, store: ResultStore, path: Optional[Union[str, Path]] = None):
        if sqlite3 is None:  # pragma: no cover - sqlite-less python build
            raise RuntimeError("sqlite3 is unavailable; QueryIndex cannot be used")
        self.store = store
        # .sqlite, not .jsonl: invisible to the store's scenario-file glob.
        self.path = Path(path) if path is not None else store.directory / "index.sqlite"
        self._con: Optional["sqlite3.Connection"] = None

    # ------------------------------------------------------------------ #
    # Connection and schema
    # ------------------------------------------------------------------ #
    def _connect(self) -> "sqlite3.Connection":
        if self._con is not None:
            return self._con
        con = sqlite3.connect(str(self.path), isolation_level=None)
        con.execute("PRAGMA busy_timeout = 30000")
        con.execute("PRAGMA synchronous = NORMAL")
        con.executescript(_SCHEMA)
        row = con.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
        if row is None:
            con.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES ('schema', ?)",
                (_SCHEMA_VERSION,),
            )
        elif row[0] != _SCHEMA_VERSION:
            # Foreign schema version: drop the derived rows; every scenario
            # rebuilds from JSONL on its next refresh.
            con.execute("BEGIN IMMEDIATE")
            try:
                con.execute("DELETE FROM entries")
                con.execute("DELETE FROM fields")
                con.execute("DELETE FROM files")
                con.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema'",
                    (_SCHEMA_VERSION,),
                )
                con.execute("COMMIT")
            except BaseException:
                con.execute("ROLLBACK")
                raise
        self._con = con
        return con

    def close(self) -> None:
        """Close the SQLite connection (reopened lazily on next use)."""
        if self._con is not None:
            self._con.close()
            self._con = None

    # ------------------------------------------------------------------ #
    # Maintenance: refresh, incremental append, rebuild
    # ------------------------------------------------------------------ #
    def refresh(self, scenario: str) -> None:
        """Bring the scenario's index rows up to date with its JSONL file.

        Takes the store's per-scenario ``flock`` for the duration (shared
        lock discipline with appends), verifies the indexed prefix by CRC
        and parses only the bytes beyond it; on any mismatch the scenario
        is rebuilt from scratch.
        """
        con = self._connect()
        path = self.store.path_for(scenario)
        if not path.exists():
            con.execute("BEGIN IMMEDIATE")
            try:
                self._delete_rows(con, scenario)
                con.execute("COMMIT")
            except BaseException:
                con.execute("ROLLBACK")
                raise
            return
        with path.open("rb") as handle:
            self.store._acquire_lock(handle, path)
            try:
                self._catch_up(con, scenario, handle)
            finally:
                self.store._release_lock(handle)

    def note_append(self, scenario: str, entry: StoreEntry, line: bytes, offset: int) -> None:
        """Index one just-appended line (caller holds the store's flock).

        Fast path: when the index is exactly at ``offset``, the new line is
        indexed alone and the prefix CRC chained forward.  Otherwise (first
        sighting, external appends, truncation) the whole file is caught up
        via a plain read handle — no second flock, the caller already holds
        it and a same-process re-acquisition would deadlock.
        """
        con = self._connect()
        row = con.execute(
            "SELECT indexed_end, prefix_crc FROM files WHERE scenario = ?",
            (scenario,),
        ).fetchone()
        if row is None and offset == 0:
            base_crc = 0
        elif row is not None and int(row[0]) == offset:
            base_crc = int(row[1])
        else:
            with self.store.path_for(scenario).open("rb") as handle:
                self._catch_up(con, scenario, handle)
            return
        crc = zlib.crc32(line, base_crc) & 0xFFFFFFFF
        con.execute("BEGIN IMMEDIATE")
        try:
            seq = self._next_seq(con, scenario)
            self._insert_entry(con, scenario, seq, entry)
            self._upsert_file(con, scenario, offset + len(line), crc)
            con.execute("COMMIT")
        except BaseException:
            con.execute("ROLLBACK")
            raise

    def rebuild(self, scenario: Optional[str] = None) -> List[str]:
        """Drop and re-derive index rows from JSONL; returns scenarios done.

        With ``scenario=None`` every ``*.jsonl`` file in the store directory
        is rebuilt.  Safe at any time: the JSONL files are the source of
        truth and are only read.
        """
        names = [scenario] if scenario is not None else self.scenario_names()
        con = self._connect()
        for name in names:
            con.execute("BEGIN IMMEDIATE")
            try:
                self._delete_rows(con, name)
                con.execute("COMMIT")
            except BaseException:
                con.execute("ROLLBACK")
                raise
            self.refresh(name)
        return names

    def scenario_names(self) -> List[str]:
        """Scenario names present as JSONL files in the store directory."""
        return sorted(path.stem for path in self.store.directory.glob("*.jsonl"))

    def _catch_up(self, con: "sqlite3.Connection", scenario: str, handle) -> None:
        """Parse bytes beyond the verified prefix into index rows.

        ``handle`` is an open binary read handle for the scenario file; the
        caller is responsible for holding the store lock (or knowingly
        reading a live file, which the CRC check makes safe: a torn read
        surfaces as a mismatch and triggers a rebuild on the next refresh).
        """
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        row = con.execute(
            "SELECT indexed_end, prefix_crc FROM files WHERE scenario = ?",
            (scenario,),
        ).fetchone()
        start, crc = 0, 0
        rebuild = False
        if row is not None:
            indexed_end, prefix_crc = int(row[0]), int(row[1])
            if indexed_end <= size and self._prefix_crc(handle, indexed_end) == prefix_crc:
                start, crc = indexed_end, prefix_crc
            else:
                # Shrunk, rewritten or garbled in place: the indexed rows can
                # no longer be trusted; re-derive the scenario from scratch.
                rebuild = True
        handle.seek(start)
        data = handle.read(size - start)
        new_entries: List[StoreEntry] = []
        indexed_end, indexed_crc = start, crc
        running = crc
        pos = 0
        while True:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # partial trailing line: stays unindexed for now
            raw = data[pos : newline + 1]
            running = zlib.crc32(raw, running) & 0xFFFFFFFF
            try:
                entry = _parse_line(raw)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                # Corrupt line: skipped, exactly like the scanner.  Its bytes
                # only enter the indexed prefix if a later valid line lands
                # (mid-file damage); trailing garbage stays beyond
                # indexed_end so tail repair cannot invalidate the index.
                pass
            else:
                new_entries.append(entry)
                indexed_end = start + newline + 1
                indexed_crc = running
            pos = newline + 1
        con.execute("BEGIN IMMEDIATE")
        try:
            if rebuild:
                self._delete_rows(con, scenario)
            seq = self._next_seq(con, scenario)
            for entry in new_entries:
                self._insert_entry(con, scenario, seq, entry)
                seq += 1
            self._upsert_file(con, scenario, indexed_end, indexed_crc)
            con.execute("COMMIT")
        except BaseException:
            con.execute("ROLLBACK")
            raise

    @staticmethod
    def _prefix_crc(handle, end: int) -> int:
        """Rolling CRC32 of the file's first ``end`` bytes."""
        handle.seek(0)
        crc = 0
        remaining = end
        while remaining > 0:
            chunk = handle.read(min(1 << 20, remaining))
            if not chunk:  # pragma: no cover - file shrank under our feet
                return ~crc & 0xFFFFFFFF  # guaranteed mismatch
            crc = zlib.crc32(chunk, crc) & 0xFFFFFFFF
            remaining -= len(chunk)
        return crc

    @staticmethod
    def _next_seq(con: "sqlite3.Connection", scenario: str) -> int:
        return int(
            con.execute(
                "SELECT COALESCE(MAX(seq), -1) + 1 FROM entries WHERE scenario = ?",
                (scenario,),
            ).fetchone()[0]
        )

    @staticmethod
    def _delete_rows(con: "sqlite3.Connection", scenario: str) -> None:
        con.execute("DELETE FROM entries WHERE scenario = ?", (scenario,))
        con.execute("DELETE FROM fields WHERE scenario = ?", (scenario,))
        con.execute("DELETE FROM files WHERE scenario = ?", (scenario,))

    @staticmethod
    def _upsert_file(con: "sqlite3.Connection", scenario: str, end: int, crc: int) -> None:
        con.execute(
            "INSERT INTO files(scenario, indexed_end, prefix_crc) VALUES (?, ?, ?) "
            "ON CONFLICT(scenario) DO UPDATE SET "
            "indexed_end = excluded.indexed_end, prefix_crc = excluded.prefix_crc",
            (scenario, end, crc),
        )

    @staticmethod
    def _insert_entry(con: "sqlite3.Connection", scenario: str, seq: int, entry: Mapping[str, Any]) -> None:
        kind = "record" if "record" in entry else "failure"
        body = entry[kind]
        con.execute(
            "INSERT INTO entries(scenario, seq, config, repetition, seed, kind, key_json, body_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                scenario,
                seq,
                entry["config"],
                int(entry["repetition"]),
                int(entry["seed"]),
                kind,
                canonical_json(entry["key"]),
                canonical_json(body),
            ),
        )
        if kind != "record" or not isinstance(body, Mapping):
            return
        rows: List[Tuple[str, int, str, str, Optional[int], Optional[float], Optional[str]]] = []
        for name, value in body.items():
            if isinstance(value, bool):
                rows.append((scenario, seq, name, "b", int(value), None, None))
            elif isinstance(value, int):
                if abs(value) <= _INT64_MAX:  # wider ints stay JSON-only
                    rows.append((scenario, seq, name, "i", value, None, None))
            elif isinstance(value, float):
                rows.append((scenario, seq, name, "f", None, value, None))
            elif isinstance(value, str):
                rows.append((scenario, seq, name, "s", None, None, value))
            elif value is None:
                rows.append((scenario, seq, name, "n", None, None, None))
            # lists/dicts: JSON body only (absent from field-based aggregates)
        con.executemany(
            "INSERT INTO fields(scenario, seq, name, kind, ival, rval, tval) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            rows,
        )

    # ------------------------------------------------------------------ #
    # Query surface (each method refreshes first)
    # ------------------------------------------------------------------ #
    def completed(self, scenario: str) -> Dict[Pair, Dict[str, Any]]:
        """Index-served equivalent of :meth:`ResultStore.completed`."""
        self.refresh(scenario)
        con = self._connect()
        return {
            (config, int(repetition)): json.loads(body)
            for config, repetition, _seed, body, _seq in con.execute(
                _COMPLETED_SQL, {"s": scenario}
            )
        }

    def completed_seeds(self, scenario: str) -> Dict[Pair, int]:
        """Seed stored with each completed pair (resume/cache validation)."""
        self.refresh(scenario)
        con = self._connect()
        return {
            (config, int(repetition)): int(seed)
            for config, repetition, seed, _body, _seq in con.execute(
                _COMPLETED_SQL, {"s": scenario}
            )
        }

    def records(self, scenario: str) -> List[Dict[str, Any]]:
        """Index-served equivalent of :meth:`ResultStore.records`."""
        self.refresh(scenario)
        con = self._connect()
        return [
            json.loads(body)
            for (body,) in con.execute(
                "SELECT body_json FROM entries "
                "WHERE scenario = ? AND kind = 'record' ORDER BY seq",
                (scenario,),
            )
        ]

    def failures(self, scenario: str) -> Dict[Pair, Dict[str, Any]]:
        """Index-served equivalent of :meth:`ResultStore.failures`."""
        self.refresh(scenario)
        return self._failures(self._connect(), scenario)

    @staticmethod
    def _failures(con: "sqlite3.Connection", scenario: str) -> Dict[Pair, Dict[str, Any]]:
        out: Dict[Pair, Dict[str, Any]] = {}
        for config, repetition, body in con.execute(
            """
            SELECT e.config, e.repetition, e.body_json FROM entries e
            JOIN (
                SELECT config, repetition,
                       MAX(CASE WHEN kind = 'failure' THEN seq END) AS fseq,
                       MAX(CASE WHEN kind = 'record' THEN seq END) AS rseq
                FROM entries WHERE scenario = ?
                GROUP BY config, repetition
            ) last ON e.scenario = ? AND e.seq = last.fseq
            WHERE last.fseq IS NOT NULL
              AND (last.rseq IS NULL OR last.fseq > last.rseq)
            """,
            (scenario, scenario),
        ):
            out[(config, int(repetition))] = json.loads(body)
        return out

    def counts(self, scenario: str) -> Dict[str, int]:
        """Record/configuration/failure counts for one scenario."""
        self.refresh(scenario)
        con = self._connect()
        records, configurations = con.execute(
            "SELECT COUNT(*), COUNT(DISTINCT config) FROM entries "
            "WHERE scenario = ? AND kind = 'record'",
            (scenario,),
        ).fetchone()
        return {
            "records": int(records),
            "configurations": int(configurations),
            "failures": len(self._failures(con, scenario)),
        }

    def query(
        self,
        scenario: str,
        *,
        where: Optional[Mapping[str, Any]] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Completed records with identity columns, filtered by equality.

        Each row is ``{"config", "repetition", "seed", **record}`` in
        pair-sorted order.  ``where`` matches on any column by equality.
        """
        self.refresh(scenario)
        con = self._connect()
        rows: List[Dict[str, Any]] = []
        for config, repetition, seed, body, _seq in con.execute(
            _COMPLETED_SQL, {"s": scenario}
        ):
            row = {"config": config, "repetition": int(repetition), "seed": int(seed)}
            row.update(json.loads(body))
            if where and any(row.get(name) != value for name, value in where.items()):
                continue
            rows.append(row)
            if limit is not None and len(rows) >= limit:
                break
        return rows

    def metric_names(self, scenario: str) -> List[str]:
        """Numeric field names present in the completed view, sorted."""
        self.refresh(scenario)
        con = self._connect()
        return [
            name
            for (name,) in con.execute(
                "SELECT DISTINCT name FROM fields "
                "WHERE scenario = :s AND kind IN ('i', 'f') AND seq IN "
                f"({_COMPLETED_SEQS_SQL}) ORDER BY name",
                {"s": scenario},
            )
        ]

    def stats(
        self,
        scenario: str,
        metrics: Optional[Sequence[str]] = None,
        *,
        percentiles: Sequence[float] = (50, 90, 99),
    ) -> List[Dict[str, Any]]:
        """Per-metric statistics over the completed view.

        Returns one row per metric with count/mean/std/min/max plus
        nearest-rank percentile columns (``p50`` etc).  Values are the
        ascending-sorted floats of the metric over completed records; mean
        and std use :func:`repro.analysis.statistics.summarize` on that
        sorted sequence, so the result is reproducible bit-for-bit from a
        scan that sorts the same way.
        """
        self.refresh(scenario)
        con = self._connect()
        if metrics is None:
            metrics = self.metric_names(scenario)
        from ..analysis.statistics import summarize  # lazy: io must not need analysis at import

        rows: List[Dict[str, Any]] = []
        for name in metrics:
            values = sorted(
                float(value)
                for (value,) in con.execute(
                    "SELECT CASE kind WHEN 'f' THEN rval ELSE ival END FROM fields "
                    "WHERE scenario = :s AND name = :name AND kind IN ('i', 'f', 'b') "
                    f"AND seq IN ({_COMPLETED_SEQS_SQL})",
                    {"s": scenario, "name": name},
                )
            )
            if not values:
                continue
            stats = summarize(values)
            row: Dict[str, Any] = {
                "metric": name,
                "count": stats.count,
                "mean": stats.mean,
                "std": stats.std,
                "min": stats.minimum,
                "max": stats.maximum,
            }
            for q in percentiles:
                row[f"p{q:g}"] = nearest_rank(values, q)
            rows.append(row)
        return rows

    def aggregate(
        self,
        scenario: str,
        group_by: Sequence[str],
        metrics: Sequence[str],
    ) -> List[Dict[str, Any]]:
        """Grouped mean/std aggregate over the completed view.

        Reconstructs minimal records (only the needed scalar fields) from
        the compacted ``fields`` table in pair-sorted order and feeds them
        to :func:`repro.analysis.statistics.aggregate_records` — the same
        function the scan path uses, so results are bit-identical to a full
        JSONL-scan recompute by construction.
        """
        self.refresh(scenario)
        con = self._connect()
        names = list(dict.fromkeys([*group_by, *metrics]))
        ordered_seqs = [
            int(seq)
            for _config, _repetition, _seed, _body, seq in con.execute(
                _COMPLETED_SQL, {"s": scenario}
            )
        ]
        by_seq: Dict[int, Dict[str, Any]] = defaultdict(dict)
        if names:
            marks = ", ".join("?" for _ in names)
            for seq, name, kind, ival, rval, tval in con.execute(
                "SELECT seq, name, kind, ival, rval, tval FROM fields "
                f"WHERE scenario = ? AND name IN ({marks}) "
                f"AND seq IN ({_COMPLETED_SEQS_SQL.replace(':s', '?')})",
                (scenario, *names, scenario),
            ):
                by_seq[int(seq)][name] = _decode_field(kind, ival, rval, tval)
        records = [by_seq.get(seq, {}) for seq in ordered_seqs]
        from ..analysis.statistics import aggregate_records  # lazy, see stats()

        return aggregate_records(records, group_by=group_by, metrics=metrics)

    def export(self, scenario: str, directory: Union[str, Path]) -> Dict[str, Path]:
        """Index-served equivalent of :meth:`ResultStore.export`.

        Same filenames, same pair-sorted order, same canonical records —
        exports are byte-identical to the scan path.
        """
        self.refresh(scenario)
        con = self._connect()
        records = [
            json.loads(body)
            for _config, _repetition, _seed, body, _seq in con.execute(
                _COMPLETED_SQL, {"s": scenario}
            )
        ]
        directory = Path(directory)
        return {
            "records_json": save_json(records, directory / f"{scenario}_records.json"),
            "records_csv": save_csv(records, directory / f"{scenario}_records.csv"),
        }
