"""Hardened on-disk result store: CRC-checked JSONL, one file per scenario.

The store is the persistence layer of the scenario sweep engine
(:mod:`repro.experiments.scenarios`).  Each scenario owns one append-only
JSONL file under the store directory; every line is a self-contained entry

.. code-block:: json

    {"config": "<16-hex config hash>", "crc": "<8-hex crc32>", "key": ...,
     "repetition": 0, "seed": 123, "record": {...}}

written atomically (single ``write`` of a full line, flushed and fsynced)
under an exclusive ``flock`` that is held only for the duration of the
append, so several *processes* may interleave appends to the same scenario
file safely.  Integrity guarantees:

* **Per-line CRC32.**  ``crc`` covers the canonical JSON of the rest of the
  entry; a bit-flipped or garbled line fails verification.  Lines written by
  older versions (no ``crc`` field) are still accepted on read.
* **Skip-and-report for mid-file corruption.**  A corrupt line *between*
  valid lines is skipped and reported via :meth:`ResultStore.corruption`
  instead of failing the scan (previously everything after the first bad
  line was dropped).
* **Tail repair.**  A partial or corrupt *trailing* region (a killed
  writer's unfinished write) is detected, ignored by readers, and truncated
  away before the next append.
* **Lock timeout.**  Lock acquisition waits up to ``lock_timeout`` seconds
  and then raises a clear diagnostic instead of blocking forever on a hung
  writer.

Besides ``record`` entries the store holds structured ``failure`` entries —
quarantined (configuration, repetition) pairs written by the supervised sweep
executor (:mod:`repro.analysis.supervisor`).  Failure entries never satisfy
the resume index (:meth:`ResultStore.completed`), so a resumed sweep retries
quarantined work; a later successful ``record`` entry for the same pair
supersedes the failure.

Records pass through :func:`repro.io.results.to_jsonable` on write and are
returned JSON-round-tripped on read, so the in-memory view of a freshly
computed record and of a record loaded during resume are literally equal.
``save_json`` / ``save_csv`` act as export views over the store via
:meth:`ResultStore.export`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

try:  # POSIX advisory locks serialize concurrent writers.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no locking)
    fcntl = None  # type: ignore[assignment]

from .results import canonical_json, save_csv, save_json

__all__ = ["ResultStore", "StoreEntry", "StoreLockTimeout", "config_hash"]

#: Resume identity of one unit of work: (config hash, repetition index).
Pair = Tuple[str, int]


class StoreLockTimeout(RuntimeError):
    """Raised when the scenario file's write lock cannot be acquired in time."""


def config_hash(key: Any, params: Any) -> str:
    """Stable 16-hex-digit hash identifying one sweep configuration.

    Derived from the canonical JSON of the configuration key *and* its task
    parameters, so a configuration whose parameters changed (same key, new
    meaning) is not mistaken for already-completed work during resume.
    """
    payload = canonical_json({"key": key, "params": params})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _line_crc(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


class StoreEntry(dict):
    """One parsed JSONL line; a dict with ``config/key/repetition/seed`` plus
    either a ``record`` (completed work) or a ``failure`` (quarantined work)."""

    @property
    def pair(self) -> Pair:
        return (self["config"], int(self["repetition"]))

    @property
    def kind(self) -> str:
        """``"record"`` or ``"failure"``."""
        return "record" if "record" in self else "failure"


def _parse_line(raw: bytes) -> StoreEntry:
    """Parse and validate one full JSONL line; raises ``ValueError`` family."""
    parsed = json.loads(raw.decode("utf-8"))
    if not isinstance(parsed, dict):
        raise ValueError("entry is not a JSON object")
    crc = parsed.pop("crc", None)
    if crc is not None:
        # canonical_json is stable under a JSON round-trip, so re-serializing
        # the parsed entry reproduces the writer's checksummed payload.
        if _line_crc(canonical_json(parsed)) != crc:
            raise ValueError("CRC mismatch (corrupted line)")
    entry = StoreEntry(parsed)
    entry.pair  # noqa: B018 - validates required fields
    if ("record" in entry) == ("failure" in entry):
        raise ValueError("entry must carry exactly one of record/failure")
    return entry


class ResultStore:
    """Append-only JSONL store of sweep records, one file per scenario.

    Parameters
    ----------
    directory:
        Store root; created on first use.  Files are named
        ``<scenario>.jsonl``.
    lock_timeout:
        Seconds to wait for the per-scenario write lock before raising
        :class:`StoreLockTimeout`.
    index:
        Whether to maintain the compacted SQLite query index
        (:mod:`repro.io.index`) next to the JSONL files.  ``None`` (the
        default) enables it when ``sqlite3`` is importable and the
        ``REPRO_DISABLE_STORE_INDEX`` environment variable is unset.  The
        index is derived state: disabling it only routes reads through full
        JSONL scans.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        lock_timeout: float = 30.0,
        index: Optional[bool] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.lock_timeout = float(lock_timeout)
        if index is None:
            index = not os.environ.get("REPRO_DISABLE_STORE_INDEX")
        self._index_enabled = bool(index)
        self._query_index: Optional[Any] = None
        # scenario -> {"entries", "pairs", "failures", "corrupt",
        #              "valid_end", "size", "truncated"}
        self._state: Dict[str, Dict[str, Any]] = {}
        self._handles: Dict[str, Any] = {}

    @property
    def query_index(self):
        """Lazily constructed :class:`repro.io.index.QueryIndex`, or ``None``
        when indexing is disabled (flag, env var or missing sqlite3)."""
        if not self._index_enabled:
            return None
        if self._query_index is None:
            from .index import QueryIndex, index_available

            if not index_available():  # pragma: no cover - sqlite-less build
                self._index_enabled = False
                return None
            self._query_index = QueryIndex(self)
        return self._query_index

    # ------------------------------------------------------------------ #
    # Layout and scanning
    # ------------------------------------------------------------------ #
    def path_for(self, scenario: str) -> Path:
        """Path of the scenario's JSONL file."""
        if not scenario or any(sep in scenario for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid scenario name {scenario!r}")
        return self.directory / f"{scenario}.jsonl"

    def _apply_entry(self, state: Dict[str, Any], entry: StoreEntry) -> None:
        state["entries"].append(entry)
        if entry.kind == "record":
            state["pairs"][entry.pair] = entry
            state["failures"].pop(entry.pair, None)
        else:
            state["failures"][entry.pair] = entry

    def _scan(self, scenario: str) -> Dict[str, Any]:
        state = self._state.get(scenario)
        if state is not None:
            return state
        state = {
            "entries": [],
            "pairs": {},
            "failures": {},
            "corrupt": [],
            "valid_end": 0,
            "size": 0,
            "truncated": False,
        }
        path = self.path_for(scenario)
        if path.exists():
            offset = 0
            line_number = 0
            with path.open("rb") as handle:
                for raw in handle:
                    line_number += 1
                    if not raw.endswith(b"\n"):
                        # Interrupted mid-write: a partial trailing line.
                        state["corrupt"].append(
                            {
                                "line": line_number,
                                "offset": offset,
                                "length": len(raw),
                                "reason": "partial line (interrupted write)",
                            }
                        )
                        offset += len(raw)
                        break
                    try:
                        entry = _parse_line(raw)
                    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
                        state["corrupt"].append(
                            {
                                "line": line_number,
                                "offset": offset,
                                "length": len(raw),
                                "reason": str(error) or type(error).__name__,
                            }
                        )
                    else:
                        self._apply_entry(state, entry)
                        state["valid_end"] = offset + len(raw)
                    offset += len(raw)
            state["size"] = offset
            # Corrupt lines after the last valid line form the repairable
            # tail; corrupt lines before it are mid-file damage (skipped and
            # reported, never truncated — valid data follows them).
            for item in state["corrupt"]:
                item["tail"] = item["offset"] >= state["valid_end"]
            state["truncated"] = any(item["tail"] for item in state["corrupt"])
        self._state[scenario] = state
        return state

    # ------------------------------------------------------------------ #
    # Read side (resume index and diagnostics)
    # ------------------------------------------------------------------ #
    def completed(self, scenario: str) -> Dict[Pair, Dict[str, Any]]:
        """Map of completed ``(config_hash, repetition)`` pairs to records.

        Quarantined pairs (failure entries without a later record) are *not*
        completed: a resumed sweep retries them.
        """
        state = self._scan(scenario)
        return {pair: entry["record"] for pair, entry in state["pairs"].items()}

    def completed_entries(self, scenario: str) -> Dict[Pair, StoreEntry]:
        """Map of completed pairs to full entries (record plus stored seed)."""
        return dict(self._scan(scenario)["pairs"])

    def failures(self, scenario: str) -> Dict[Pair, Dict[str, Any]]:
        """Quarantined pairs (structured failures not superseded by a record)."""
        state = self._scan(scenario)
        return {pair: entry["failure"] for pair, entry in state["failures"].items()}

    def entries(self, scenario: str) -> List[StoreEntry]:
        """All valid entries of a scenario, in file (append) order."""
        return list(self._scan(scenario)["entries"])

    def records(self, scenario: str) -> List[Dict[str, Any]]:
        """All stored records of a scenario, in file (append) order."""
        return [
            entry["record"]
            for entry in self._scan(scenario)["entries"]
            if entry.kind == "record"
        ]

    def had_truncated_tail(self, scenario: str) -> bool:
        """Whether the last scan found (and dropped) a partial/corrupt tail."""
        return bool(self._scan(scenario)["truncated"])

    def corruption(self, scenario: str) -> List[Dict[str, Any]]:
        """Skipped corrupt lines found by the last scan (diagnostics).

        Each item has ``line``, ``offset``, ``length``, ``reason`` and
        ``tail`` (True for the repairable trailing region, False for mid-file
        damage that is preserved on disk but ignored by readers).
        """
        return [dict(item) for item in self._scan(scenario)["corrupt"]]

    def index(self) -> Dict[str, Dict[str, Any]]:
        """Summary of every scenario file currently in the store directory."""
        summary: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.directory.glob("*.jsonl")):
            scenario = path.stem
            state = self._scan(scenario)
            records = [e for e in state["entries"] if e.kind == "record"]
            summary[scenario] = {
                "records": len(records),
                "configurations": len({e["config"] for e in records}),
                "failures": len(state["failures"]),
                "corrupt_lines": len(state["corrupt"]),
                "file": path.name,
            }
        return summary

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def _handle(self, scenario: str):
        handle = self._handles.get(scenario)
        if handle is None or handle.closed:
            handle = self.path_for(scenario).open("ab")
            self._handles[scenario] = handle
        return handle

    def _acquire_lock(self, handle, path: Path) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise StoreLockTimeout(
                        f"could not lock {path} within {self.lock_timeout:.1f}s: "
                        "another writer is holding the lock (a hung or killed-"
                        "but-lingering sweep?); close it or raise lock_timeout"
                    ) from None
                time.sleep(0.02)

    def _release_lock(self, handle) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - nothing useful to do
            pass

    def _sync_under_lock(self, scenario: str, handle) -> Dict[str, Any]:
        """Bring the cached scan up to date and repair the tail, under lock."""
        size = os.fstat(handle.fileno()).st_size
        state = self._scan(scenario)
        if size != state["size"]:
            # Another writer appended (or the file changed) since our scan.
            self._state.pop(scenario, None)
            state = self._scan(scenario)
        if state["truncated"]:
            # Only the trailing garbage region (a killed writer's unfinished
            # write) is removed; mid-file corruption stays put and skipped.
            os.ftruncate(handle.fileno(), state["valid_end"])
            state["corrupt"] = [c for c in state["corrupt"] if not c["tail"]]
            state["truncated"] = False
            state["size"] = state["valid_end"]
        return state

    def _append_entry(self, scenario: str, entry: StoreEntry) -> StoreEntry:
        body = canonical_json(entry)
        checked = dict(json.loads(body))
        checked["crc"] = _line_crc(body)
        line = canonical_json(checked) + "\n"
        # Round-trip through JSON so the in-memory entry equals the on-disk
        # one (numpy scalars already became builtins in `body`).
        entry = StoreEntry({k: v for k, v in json.loads(line).items() if k != "crc"})
        handle = self._handle(scenario)
        path = self.path_for(scenario)
        self._acquire_lock(handle, path)
        try:
            state = self._sync_under_lock(scenario, handle)
            data = line.encode("utf-8")
            offset = state["size"]
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
            self._apply_entry(state, entry)
            state["valid_end"] = offset + len(data)
            state["size"] = offset + len(data)
            query_index = self.query_index
            if query_index is not None:
                # Still under the flock: the index sees each append exactly
                # where the file write put it (fast single-line path).
                query_index.note_append(scenario, entry, data, offset)
        finally:
            self._release_lock(handle)
        return entry

    def append(
        self,
        scenario: str,
        *,
        key: Any,
        params: Any,
        repetition: int,
        seed: int,
        record: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Persist one record; returns its JSON-round-tripped form.

        The returned record is what a later resume would load from disk, so
        callers that keep records in memory should use it in place of the
        original (eliminating numpy-scalar vs builtin-float differences
        between fresh and resumed runs).
        """
        entry = StoreEntry(
            config=config_hash(key, params),
            key=key,
            repetition=int(repetition),
            seed=int(seed),
            record=record,
        )
        return self._append_entry(scenario, entry)["record"]

    def append_failure(
        self,
        scenario: str,
        *,
        key: Any,
        params: Any,
        repetition: int,
        seed: int,
        failure: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Persist a structured quarantine failure for one pair.

        Failure entries document *why* a pair is missing without blocking a
        later resume from retrying it; a subsequent successful record for the
        same pair supersedes the failure.
        """
        entry = StoreEntry(
            config=config_hash(key, params),
            key=key,
            repetition=int(repetition),
            seed=int(seed),
            failure=failure,
        )
        return self._append_entry(scenario, entry)["failure"]

    def close(self) -> None:
        """Flush, fsync and close any open append handles.

        Every append already fsyncs its own line, so this is belt-and-braces
        (the KeyboardInterrupt path calls it before printing the resume
        command); records already on disk stay valid either way.
        """
        for handle in self._handles.values():
            if not handle.closed:
                try:
                    handle.flush()
                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover - fd already unusable
                    pass
                handle.close()
        self._handles.clear()
        if self._query_index is not None:
            self._query_index.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Export views
    # ------------------------------------------------------------------ #
    def export(self, scenario: str, directory: Union[str, Path]) -> Dict[str, Path]:
        """Export a scenario's records as JSON and CSV next to the store.

        Records are ordered by ``(config_hash, repetition)``, so exports are
        byte-identical regardless of the completion (append) order.  The
        sweep engine's own exports (``ExperimentResult.save``) instead use
        deterministic task order.  Failure entries are not exported.

        When the query index is enabled the export is served from it (the
        differential harness pins byte-identity between the two paths).
        """
        query_index = self.query_index
        if query_index is not None:
            return query_index.export(scenario, directory)
        state = self._scan(scenario)
        pairs = state["pairs"]
        records = [pairs[pair]["record"] for pair in sorted(pairs)]
        directory = Path(directory)
        return {
            "records_json": save_json(records, directory / f"{scenario}_records.json"),
            "records_csv": save_csv(records, directory / f"{scenario}_records.csv"),
        }
