"""On-disk result store: one JSONL record per (scenario, config, repetition).

The store is the persistence layer of the scenario sweep engine
(:mod:`repro.experiments.scenarios`).  Each scenario owns one append-only
JSONL file under the store directory; every line is a self-contained entry

.. code-block:: json

    {"config": "<16-hex config hash>", "key": ..., "repetition": 0,
     "seed": 123, "record": {...}}

written atomically (single ``write`` of a full line, flushed and fsynced), so
a killed sweep leaves at most one truncated trailing line.  On open the store
scans each file, indexes the valid entries by ``(config_hash, repetition)``
and remembers the byte offset of the last valid line; a truncated tail is
detected, ignored, and truncated away before the next append.  Resumed sweeps
ask :meth:`ResultStore.completed` which pairs exist and re-run only the rest,
which makes an interrupted+resumed sweep record-identical to an uninterrupted
one (seeds derive from the configuration key, not from execution order).

Records pass through :func:`repro.io.results.to_jsonable` on write and are
returned JSON-round-tripped on read, so the in-memory view of a freshly
computed record and of a record loaded during resume are literally equal.
``save_json`` / ``save_csv`` act as export views over the store via
:meth:`ResultStore.export`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

try:  # POSIX advisory locks guard against concurrent writers.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no locking)
    fcntl = None  # type: ignore[assignment]

from .results import canonical_json, save_csv, save_json

__all__ = ["ResultStore", "StoreEntry", "config_hash"]

#: Resume identity of one unit of work: (config hash, repetition index).
Pair = Tuple[str, int]


def config_hash(key: Any, params: Any) -> str:
    """Stable 16-hex-digit hash identifying one sweep configuration.

    Derived from the canonical JSON of the configuration key *and* its task
    parameters, so a configuration whose parameters changed (same key, new
    meaning) is not mistaken for already-completed work during resume.
    """
    payload = canonical_json({"key": key, "params": params})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class StoreEntry(dict):
    """One parsed JSONL line; a dict with ``config/key/repetition/seed/record``."""

    @property
    def pair(self) -> Pair:
        return (self["config"], int(self["repetition"]))


class ResultStore:
    """Append-only JSONL store of sweep records, one file per scenario.

    Parameters
    ----------
    directory:
        Store root; created on first use.  Files are named
        ``<scenario>.jsonl``.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # scenario -> {"entries": [StoreEntry], "pairs": {pair: StoreEntry},
        #              "valid_bytes": int, "truncated": bool}
        self._state: Dict[str, Dict[str, Any]] = {}
        self._handles: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Layout and scanning
    # ------------------------------------------------------------------ #
    def path_for(self, scenario: str) -> Path:
        """Path of the scenario's JSONL file."""
        if not scenario or any(sep in scenario for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid scenario name {scenario!r}")
        return self.directory / f"{scenario}.jsonl"

    def _scan(self, scenario: str) -> Dict[str, Any]:
        state = self._state.get(scenario)
        if state is not None:
            return state
        entries: List[StoreEntry] = []
        pairs: Dict[Pair, StoreEntry] = {}
        valid_bytes = 0
        truncated = False
        path = self.path_for(scenario)
        if path.exists():
            with path.open("rb") as handle:
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        # Interrupted mid-write: ignore the partial tail.
                        truncated = True
                        break
                    try:
                        parsed = json.loads(raw.decode("utf-8"))
                        entry = StoreEntry(parsed)
                        entry.pair  # noqa: B018 - validates required fields
                        entry["record"]
                    except (ValueError, KeyError, TypeError):
                        truncated = True
                        break
                    entries.append(entry)
                    pairs[entry.pair] = entry
                    valid_bytes += len(raw)
        state = {
            "entries": entries,
            "pairs": pairs,
            "valid_bytes": valid_bytes,
            "truncated": truncated,
        }
        self._state[scenario] = state
        return state

    # ------------------------------------------------------------------ #
    # Read side (resume index)
    # ------------------------------------------------------------------ #
    def completed(self, scenario: str) -> Dict[Pair, Dict[str, Any]]:
        """Map of completed ``(config_hash, repetition)`` pairs to records."""
        state = self._scan(scenario)
        return {pair: entry["record"] for pair, entry in state["pairs"].items()}

    def completed_entries(self, scenario: str) -> Dict[Pair, StoreEntry]:
        """Map of completed pairs to full entries (record plus stored seed)."""
        return dict(self._scan(scenario)["pairs"])

    def entries(self, scenario: str) -> List[StoreEntry]:
        """All valid entries of a scenario, in file (append) order."""
        return list(self._scan(scenario)["entries"])

    def records(self, scenario: str) -> List[Dict[str, Any]]:
        """All stored records of a scenario, in file (append) order."""
        return [entry["record"] for entry in self._scan(scenario)["entries"]]

    def had_truncated_tail(self, scenario: str) -> bool:
        """Whether the last scan found (and dropped) a partial trailing line."""
        return bool(self._scan(scenario)["truncated"])

    def index(self) -> Dict[str, Dict[str, Any]]:
        """Summary of every scenario file currently in the store directory."""
        summary: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.directory.glob("*.jsonl")):
            scenario = path.stem
            state = self._scan(scenario)
            summary[scenario] = {
                "records": len(state["entries"]),
                "configurations": len({e["config"] for e in state["entries"]}),
                "file": path.name,
            }
        return summary

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def _writer(self, scenario: str):
        handle = self._handles.get(scenario)
        if handle is None or handle.closed:
            path = self.path_for(scenario)
            handle = path.open("ab")
            if fcntl is not None:
                # One writer per scenario file, across processes: a second
                # live writer would race the truncated-tail repair below and
                # could destroy records the first one fsynced.
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    handle.close()
                    raise RuntimeError(
                        f"another process is writing to {path}; "
                        "run one sweep per store scenario at a time"
                    ) from None
            # Rescan under the lock: the pre-lock cache may predate appends
            # by a writer that has since finished. Only a genuinely invalid
            # tail (partial line from a kill) is truncated away.
            self._state.pop(scenario, None)
            state = self._scan(scenario)
            if path.stat().st_size != state["valid_bytes"]:
                with path.open("r+b") as repair:
                    repair.truncate(state["valid_bytes"])
                state["truncated"] = False
            self._handles[scenario] = handle
        return handle

    def append(
        self,
        scenario: str,
        *,
        key: Any,
        params: Any,
        repetition: int,
        seed: int,
        record: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Persist one record; returns its JSON-round-tripped form.

        The returned record is what a later resume would load from disk, so
        callers that keep records in memory should use it in place of the
        original (eliminating numpy-scalar vs builtin-float differences
        between fresh and resumed runs).
        """
        entry = StoreEntry(
            config=config_hash(key, params),
            key=key,
            repetition=int(repetition),
            seed=int(seed),
            record=record,
        )
        line = canonical_json(entry) + "\n"
        # Round-trip through JSON so the in-memory entry equals the on-disk one.
        entry = StoreEntry(json.loads(line))
        handle = self._writer(scenario)
        handle.write(line.encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())
        state = self._scan(scenario)
        state["entries"].append(entry)
        state["pairs"][entry.pair] = entry
        state["valid_bytes"] += len(line.encode("utf-8"))
        return entry["record"]

    def close(self) -> None:
        """Close any open append handles (records already on disk stay valid)."""
        for handle in self._handles.values():
            if not handle.closed:
                handle.close()
        self._handles.clear()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Export views
    # ------------------------------------------------------------------ #
    def export(self, scenario: str, directory: Union[str, Path]) -> Dict[str, Path]:
        """Export a scenario's records as JSON and CSV next to the store.

        Records are ordered by ``(config_hash, repetition)``, so exports are
        byte-identical regardless of the completion (append) order.  The
        sweep engine's own exports (``ExperimentResult.save``) instead use
        deterministic task order.
        """
        state = self._scan(scenario)
        pairs = state["pairs"]
        records = [pairs[pair]["record"] for pair in sorted(pairs)]
        directory = Path(directory)
        return {
            "records_json": save_json(records, directory / f"{scenario}_records.json"),
            "records_csv": save_csv(records, directory / f"{scenario}_records.csv"),
        }
