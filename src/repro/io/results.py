"""Persistence of experiment results as JSON and CSV.

Experiment results are lists of flat record dictionaries (one per run or per
aggregated configuration).  Saving them next to the benchmark output makes the
reproduction auditable: EXPERIMENTS.md references the same numbers the harness
wrote to disk.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "to_jsonable",
    "canonical_json",
    "save_json",
    "load_json",
    "save_csv",
    "load_csv",
]


def to_jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays and nested containers to JSON-safe types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        # Sets have no order; sort so repeated serializations of the same
        # value are byte-identical (mixed types fall back to a repr sort).
        try:
            items = sorted(value)
        except TypeError:
            items = sorted(value, key=repr)
        return [to_jsonable(v) for v in items]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to the string representation for exotic objects (e.g. trees).
    return str(value)


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical, deterministic JSON string.

    Keys are sorted, separators are minimal and numpy types are converted
    first, so structurally equal inputs always produce byte-equal output —
    the basis for sweep seed derivation and the result store's config hashes.
    """
    return json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))


def save_json(records: Any, path: Union[str, Path]) -> Path:
    """Write ``records`` to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(records), indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON previously written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_csv(
    records: Sequence[Mapping[str, Any]],
    path: Union[str, Path],
    *,
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write record dicts to ``path`` as CSV.

    Parameters
    ----------
    records:
        Flat record dictionaries.
    path:
        Output file path (parent directories are created).
    columns:
        Column order; defaults to the union of keys in first-seen order.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        seen: List[str] = []
        for record in records:
            for key in record:
                if key not in seen:
                    seen.append(key)
        columns = seen
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow({k: to_jsonable(record.get(k)) for k in columns})
    return path


def load_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Load a CSV written by :func:`save_csv` (values come back as strings)."""
    with Path(path).open() as handle:
        return [dict(row) for row in csv.DictReader(handle)]
