#!/usr/bin/env python
"""Fail on broken intra-repo doc links and on orphaned docs pages.

Scans the repository's documentation surface (``README.md`` and
``docs/*.md``) for markdown links and verifies every *intra-repository*
target resolves to an existing file or directory. External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
ignored; a ``path#anchor`` target is checked for the file part only.

Additionally, every page under ``docs/`` must be *reachable* from
``README.md`` by following intra-repo markdown links (transitively through
other docs pages).  A page nobody links to is a page nobody finds — adding
a docs file without wiring it into the surface fails CI.

Used by the ``docs`` CI job; run locally with::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Markdown inline links: [text](target) — excluding images' extra "!" is
#: unnecessary (image targets must exist too).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[str]:
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for match in _LINK.finditer(line):
                yield lineno, match.group(1)


def reachable_from_readme() -> set:
    """Doc files reachable from README.md via intra-repo markdown links."""
    readme = os.path.join(REPO_ROOT, "README.md")
    if not os.path.exists(readme):
        return set()
    seen = {readme}
    frontier = [readme]
    while frontier:
        doc = frontier.pop()
        base = os.path.dirname(doc)
        for _, target in iter_links(doc):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(os.path.join(base, file_part))
            if resolved.endswith(".md") and os.path.isfile(resolved):
                if resolved not in seen:
                    seen.add(resolved)
                    frontier.append(resolved)
    return seen


def main() -> int:
    broken: List[str] = []
    checked = 0
    for doc in doc_files():
        base = os.path.dirname(doc)
        rel_doc = os.path.relpath(doc, REPO_ROOT)
        for lineno, target in iter_links(doc):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                broken.append(f"{rel_doc}:{lineno}: broken link -> {target}")
    reachable = reachable_from_readme()
    orphans = [
        os.path.relpath(doc, REPO_ROOT)
        for doc in doc_files()
        if doc not in reachable
    ]
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken intra-repo link(s).")
    if orphans:
        for page in orphans:
            print(
                f"{page}: orphaned docs page (not reachable from README.md "
                "via markdown links)"
            )
        print(f"\n{len(orphans)} orphaned docs page(s).")
    if broken or orphans:
        return 1
    print(
        f"OK: {checked} intra-repo links across {len(doc_files())} files; "
        "all docs pages reachable from README.md."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
