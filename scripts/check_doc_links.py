#!/usr/bin/env python
"""Fail if README/docs markdown links point at missing files.

Scans the repository's documentation surface (``README.md`` and
``docs/*.md``) for markdown links and verifies every *intra-repository*
target resolves to an existing file or directory. External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
ignored; a ``path#anchor`` target is checked for the file part only.

Used by the ``docs`` CI job; run locally with::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Markdown inline links: [text](target) — excluding images' extra "!" is
#: unnecessary (image targets must exist too).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[str]:
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for match in _LINK.finditer(line):
                yield lineno, match.group(1)


def main() -> int:
    broken: List[str] = []
    checked = 0
    for doc in doc_files():
        base = os.path.dirname(doc)
        rel_doc = os.path.relpath(doc, REPO_ROOT)
        for lineno, target in iter_links(doc):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                broken.append(f"{rel_doc}:{lineno}: broken link -> {target}")
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken intra-repo link(s).")
        return 1
    print(f"OK: {checked} intra-repo links across {len(doc_files())} files.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
