#!/usr/bin/env python
"""Chaos drill: prove a sweep survives injected faults with identical results.

The acceptance criterion of the fault-tolerance layer, as an executable:

1. **Reference leg** — run a scenario fault-free (supervised) and save its
   exports.
2. **Chaos leg** — run the same scenario at the same seed with an injected
   worker SIGKILL, a transient task fault and a corrupted store line; the run
   must complete with zero quarantines and exports *byte-identical* to the
   reference, the corrupt line must be skipped-and-reported by a fresh scan,
   and a ``--resume`` must re-run exactly the corrupted pair and heal the
   store.
3. **Quarantine leg** — inject a permanent fault (more attempts than the
   retry budget) into one configuration; the sweep must finish degraded
   (structured failure entries in the store, healthy configurations
   untouched) instead of aborting, and a chaos-free resume must supersede the
   quarantine with real records.

Exits nonzero on the first violated expectation::

    python scripts/run_chaos_drill.py [--scenario figure1] [--seed 7] [--out DIR]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

from repro.analysis.supervisor import RetryPolicy
from repro.engine.chaos import ChaosSpec, Fault, FaultPlan
from repro.experiments import get_scenario, resolve_config, run_scenario
from repro.io import ResultStore
from repro.io.store import config_hash


def _run(spec, config, store_dir, out_dir, **kwargs):
    with ResultStore(store_dir) as store:
        result = run_scenario(spec, config=config, store=store, **kwargs)
    result.save(out_dir)
    return result


def _export_files(directory: Path):
    # The metadata export legitimately differs between runs: it embeds the
    # supervision report (crash/retry counters).  The *data* must not.
    return sorted(
        p
        for p in Path(directory).iterdir()
        if p.is_file() and not p.name.endswith("_metadata.json")
    )


def _check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        raise SystemExit(f"chaos drill failed: {label}")


def _compare_exports(reference: Path, candidate: Path) -> None:
    ref_files = _export_files(reference)
    _check(bool(ref_files), "reference run produced exports")
    for ref in ref_files:
        other = Path(candidate) / ref.name
        _check(other.exists(), f"{ref.name} exists after chaos")
        _check(
            other.read_bytes() == ref.read_bytes(),
            f"{ref.name} byte-identical to fault-free run",
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="figure1", help="registry scenario name")
    parser.add_argument("--seed", type=int, default=7, help="base seed of both runs")
    parser.add_argument(
        "--chaos-seed", type=int, default=7, help="seed of the fault sampler"
    )
    parser.add_argument(
        "--out", default=None, help="work directory (default: a temp dir, deleted)"
    )
    args = parser.parse_args(argv)

    spec = get_scenario(args.scenario)
    if spec.run_override is not None:
        parser.error(f"scenario {args.scenario!r} does not run through the sweep engine")
    config = resolve_config(spec, seed=args.seed, smoke=True)
    policy = RetryPolicy(max_retries=3, backoff_base=0.01, jitter=0.0)
    work = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="chaos-drill-"))
    work.mkdir(parents=True, exist_ok=True)

    try:
        print(f"chaos drill on scenario {args.scenario!r} (seed {args.seed})")

        print("reference leg: fault-free supervised run")
        reference = _run(
            spec, config, work / "ref-store", work / "ref-out",
            supervise=True, policy=policy,
        )
        report = reference.metadata["sweep_report"]
        _check(report["ok"] == report["total"], "all pairs completed")

        print("chaos leg: kill=1, error=1, corrupt=1")
        chaos = ChaosSpec(
            counts={"kill": 1, "error": 1, "corrupt": 1}, seed=args.chaos_seed
        )
        result = _run(
            spec, config, work / "chaos-store", work / "chaos-out",
            policy=policy, chaos=chaos,
        )
        report = result.metadata["sweep_report"]
        print(f"  supervision: {report['ok']}/{report['total']} ok, "
              f"{report['retries']} retries, {report['worker_crashes']} worker "
              f"crashes, {report['pool_restarts']} pool restarts")
        _check(report["worker_crashes"] >= 1, "worker SIGKILL was injected")
        _check(report["retries"] >= 1, "transient fault was retried")
        _check(not report["quarantined"], "no quarantine under transient chaos")
        _compare_exports(work / "ref-out", work / "chaos-out")

        scan = ResultStore(work / "chaos-store")
        corrupt = scan.corruption(spec.name)
        total = report["total"]
        _check(len(corrupt) == 1, "corrupted store line skipped and reported")
        _check(
            len(scan.completed(spec.name)) == total - 1,
            "corrupted pair dropped from the resume index",
        )
        resumed = run_scenario(
            spec, config=config, store=scan, resume=True, supervise=True
        )
        scan.close()
        resumed.save(work / "resumed-out")
        _check(
            resumed.metadata["sweep_report"]["total"] == 1,
            "resume re-ran exactly the corrupted pair",
        )
        healed = ResultStore(work / "chaos-store")
        _check(
            len(healed.completed(spec.name)) == total,
            "store healed by the resume",
        )
        healed.close()
        _compare_exports(work / "ref-out", work / "resumed-out")

        print("quarantine leg: permanent fault in one configuration")
        pairs = sorted(healed.completed(spec.name))
        poison_config = pairs[0][0]
        poison = FaultPlan(
            faults=tuple(
                Fault(kind="error", config=cfg, repetition=rep, attempts=99)
                for cfg, rep in pairs
                if cfg == poison_config
            )
        )
        degraded = _run(
            spec, config, work / "poison-store", work / "poison-out",
            policy=RetryPolicy(max_retries=1, backoff_base=0.01, jitter=0.0),
            chaos=poison,
        )
        report = degraded.metadata["sweep_report"]
        _check(bool(report["quarantined"]), "poison configuration quarantined")
        _check(
            report["ok"] == report["total"] - len(report["quarantined"]),
            "healthy configurations all completed",
        )
        store = ResultStore(work / "poison-store")
        _check(
            len(store.failures(spec.name)) == len(report["quarantined"]),
            "structured failure entries persisted",
        )
        run_scenario(spec, config=config, store=store, resume=True, supervise=True)
        _check(
            not store.failures(spec.name)
            and len(store.completed(spec.name)) == report["total"],
            "chaos-free resume superseded the quarantine",
        )
        store.close()

        print("chaos drill passed")
        return 0
    finally:
        if args.out is None:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
