#!/usr/bin/env python
"""Large-n smoke: a 100k-node gossip run under the paged layout, RSS-bounded.

CI-grade proof that the paged knowledge layout breaks the dense memory
ceiling: runs a full synchronous push-pull exchange loop (every node calls a
uniform random partner each round, both directions merge, the incremental
:class:`~repro.core.completion.CompletionTracker` drives termination) at

* ``n = 100000`` nodes with ``m = 8192`` messages (128 words per row —
  rectangular on purpose: the protocols' square ``m = n`` default would make
  the *gathered sender rows* alone 1.25 GB, which is a benchmark, not a
  smoke test), and
* the **paged** layout forced via :func:`repro.engine.layouts.use`,

then asserts the process peak RSS stayed under a ceiling that the dense
layout could not meet (dense matrix + swap buffer alone: 2 x 100000 x 128 x 8
= ~205 MB plus frontier bookkeeping; the paged layout keeps one copy and
streams blocks).  The run itself verifies correctness end to end: the loop
must reach completion (every node knows all 8192 messages) within the round
cap, and the tracker's incremental verdict is cross-checked against a final
:func:`~repro.core.completion.gossip_complete` scan.

Usage::

    PYTHONPATH=src python scripts/run_large_n_smoke.py
    PYTHONPATH=src python scripts/run_large_n_smoke.py --n 50000 --ceiling-mb 400
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core.completion import CompletionTracker, gossip_complete
from repro.engine import backends, layouts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="number of nodes")
    parser.add_argument(
        "--messages", type=int, default=8192, help="number of original messages"
    )
    parser.add_argument(
        "--layout", default="paged", help="knowledge layout to force"
    )
    parser.add_argument(
        "--ceiling-mb",
        type=float,
        default=400.0,
        help="peak-RSS ceiling asserted after the run (MB)",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=200, help="round cap (failure guard)"
    )
    parser.add_argument("--seed", type=int, default=20150525)
    args = parser.parse_args()

    n, m = args.n, args.messages
    rng = np.random.default_rng(args.seed)
    with layouts.use(args.layout):
        knowledge = layouts.make_knowledge(n, m)
    print(
        f"n={n} m={m} layout={type(knowledge).layout} "
        f"({type(knowledge).__name__}), backend={backends.active().name}, "
        f"storage={knowledge.storage_nbytes() / 1e6:.1f}MB",
        flush=True,
    )

    tracker = CompletionTracker(knowledge)
    complete_row = knowledge.full_row_mask()
    callers = np.arange(n, dtype=np.int64)
    rounds = 0
    t0 = time.perf_counter()
    while not tracker.is_complete():
        if rounds >= args.max_rounds:
            print(
                f"FAIL: not complete after {rounds} rounds "
                f"({tracker.missing_pairs()} pairs missing)"
            )
            return 1
        targets = rng.integers(0, n, n).astype(np.int64)
        touched, promoted = knowledge.apply_exchange(
            callers,
            targets,
            complete=tracker.complete_rows,
            complete_row=complete_row,
        )
        tracker.update(touched)
        tracker.mark_promoted(promoted)
        rounds += 1
    wall = time.perf_counter() - t0

    if not gossip_complete(knowledge):
        print("FAIL: tracker reported completion but the full scan disagrees")
        return 1

    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    dense_mb = layouts.estimate_bytes("dense", n, m) / 1e6
    print(
        f"complete in {rounds} rounds, {wall:.1f}s; "
        f"peak RSS {peak_mb:.1f}MB (ceiling {args.ceiling_mb:.0f}MB, "
        f"dense estimate {dense_mb:.0f}MB), "
        f"storage {knowledge.storage_nbytes() / 1e6:.1f}MB",
        flush=True,
    )
    if peak_mb > args.ceiling_mb:
        print(f"FAIL: peak RSS {peak_mb:.1f}MB exceeds ceiling {args.ceiling_mb}MB")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
