#!/usr/bin/env python
"""Run the simulator kernel benchmark baseline and write ``BENCH_kernel.json``.

This script times the same hot building blocks as
``benchmarks/bench_protocols_micro.py`` — full protocol runs plus the raw
knowledge-kernel operations — at fixed seeds and sizes (n in {1000, 5000,
20000} by default), and records the results as a machine-readable baseline.
Each future performance PR should rerun it and compare against the committed
``BENCH_kernel.json`` so the repository accumulates a perf trajectory.

Usage::

    PYTHONPATH=src python scripts/run_benchmarks.py            # full baseline
    PYTHONPATH=src python scripts/run_benchmarks.py --quick    # n=1000 only
    PYTHONPATH=src python scripts/run_benchmarks.py -o out.json

Timings are best-of-``--repeats`` wall-clock; graph construction is excluded
from protocol timings.  The JSON records the active kernel backend
(:mod:`repro.engine.backends`) in its header, per-backend protocol and
kernel timings (``numpy`` / ``c`` / ``c-threads``) for every size, and a
thread-scaling micro-bench that times one forced-``t``-thread exchange
round at t in {1, 2, 4, 8} — the measurement behind the small-batch
dispatch cutoff documented in ``docs/parallelism.md``.

Memory measurements (schema 3): every protocol entry carries the peak RSS
of the run, and a ``large_n`` section runs the full push-pull protocol at
n = 100000 once per knowledge-storage layout (``dense`` / ``paged`` /
``sparse``, :mod:`repro.engine.layouts`) with per-layout wall-clock, peak
RSS and resident storage bytes, cross-checked for bit-identical final
states via the storage fingerprint.  ``ru_maxrss`` is a process-lifetime
high-water mark, so each of these measurements runs in a fresh subprocess
(this script re-invoked with ``--_child``); the reported RSS includes
graph construction, which every protocol run pays.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Dict, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import FastGossiping, MemoryGossiping, PushPullGossip, erdos_renyi
from repro.engine import FrontierKnowledge, KnowledgeMatrix, backends, make_rng
from repro.engine import _ckernel
from repro.engine.knowledge import _DEFAULT_CROSSOVER, _FRONTIER_MIN_WORDS
from repro.graphs import paper_edge_probability

#: Thread counts exercised by the thread-scaling micro-bench.
SCALING_THREADS = (1, 2, 4, 8)

SIZES = (1000, 5000, 20000)
#: Large-n layout benchmark: one full protocol run per storage layout.
LARGE_N = 100_000
LARGE_N_LAYOUTS = ("dense", "paged", "sparse")
GRAPH_SEED = 5
PROTOCOL_SEEDS = {"push-pull": 1, "fast-gossiping": 2, "memory": 3}

#: Wall-clock of the pre-vectorization reference kernels, measured on the
#: same machine with the same graph/protocol seeds and best-of methodology.
#: push-pull / fast-gossiping numbers are the original seed (commit c5dee3b);
#: the memory numbers are the per-node Phase I-III loops as committed by PR 1
#: (BENCH_kernel.json before the batched memory kernels landed).  Kept here
#: because the reference kernels no longer exist in the tree; used to report
#: the speedup of the current kernel in the baseline JSON.
SEED_REFERENCE_MS = {
    "1000": {"memory": 16.7},
    "5000": {"push-pull": 101.4, "fast-gossiping": 93.7, "memory": 79.9},
    "20000": {"push-pull": 1175.5, "fast-gossiping": 1020.2, "memory": 390.2},
}


def best_of(func: Callable[[], object], repeats: int) -> "tuple[float, object]":
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def available_backends() -> "Dict[str, backends.KernelBackend]":
    """The backend variants this machine can run (numpy always; C if built)."""
    variants: Dict[str, backends.KernelBackend] = {
        "numpy": backends.NumpyBackend()
    }
    if _ckernel.available():
        variants["c"] = backends.CSerialBackend()
        variants["c-threads"] = backends.CThreadsBackend()
    return variants


def _make_protocol(name: str):
    return {
        "push-pull": lambda: PushPullGossip(),
        "fast-gossiping": lambda: FastGossiping(),
        "memory": lambda: MemoryGossiping(leader=0),
    }[name]()


def _child_main(spec_json: str) -> int:
    """One isolated protocol measurement; prints a JSON result line.

    Runs in a fresh process so ``ru_maxrss`` (a process-lifetime high-water
    mark) reflects exactly this (layout, protocol, n) combination.  The
    storage layout is inherited from ``REPRO_KNOWLEDGE_LAYOUT``, which the
    parent sets per measurement.
    """
    import resource

    spec = json.loads(spec_json)
    n = int(spec["n"])
    graph = erdos_renyi(
        n,
        paper_edge_probability(n),
        rng=int(spec.get("graph_seed", GRAPH_SEED)),
        require_connected=True,
    )
    protocol = _make_protocol(spec["protocol"])
    wall, result = best_of(
        lambda: protocol.run(graph, rng=int(spec["seed"])),
        int(spec.get("repeats", 1)),
    )
    knowledge = result.knowledge
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    out = {
        "layout": type(knowledge).layout,
        "storage_class": type(knowledge).__name__,
        "backend": backends.active().name,
        "wall_clock_s": round(wall, 6),
        "rounds": int(result.rounds),
        "completed": bool(result.completed),
        "total_messages": int(result.total_messages()),
        "fingerprint": knowledge.fingerprint(),
        "peak_rss_mb": round(peak_rss_kb / 1024.0, 1),
        "storage_mb": round(knowledge.storage_nbytes() / 1e6, 1),
    }
    json.dump(out, sys.stdout)
    sys.stdout.write("\n")
    return 0


def measure_in_subprocess(
    n: int,
    protocol_name: str,
    seed: int,
    repeats: int = 1,
    layout: Optional[str] = None,
) -> Dict[str, object]:
    """Run one (layout, protocol, n) measurement in a fresh subprocess."""
    spec = {"n": n, "protocol": protocol_name, "seed": seed, "repeats": repeats}
    env = dict(os.environ)
    if layout is not None:
        env["REPRO_KNOWLEDGE_LAYOUT"] = layout
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--_child", json.dumps(spec)],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child benchmark failed (n={n}, {protocol_name}, layout={layout}):\n"
            f"{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def large_n_entry(n: int, repeats: int) -> Dict[str, object]:
    """Full push-pull runs at large n, once per storage layout.

    The layouts must agree on rounds, message totals and the final knowledge
    fingerprint — the cross-layout bit-identity contract, verified here at a
    size where it actually matters.
    """
    entry: Dict[str, object] = {
        "n": n,
        "protocol": "push-pull",
        "graph_seed": GRAPH_SEED,
        "seed": PROTOCOL_SEEDS["push-pull"],
        "layouts": {},
    }
    reference = None
    for layout in LARGE_N_LAYOUTS:
        print(f"large-n={n}: push-pull under {layout} layout ...", flush=True)
        row = measure_in_subprocess(
            n, "push-pull", PROTOCOL_SEEDS["push-pull"], repeats, layout=layout
        )
        if not row["completed"]:
            raise RuntimeError(f"large-n push-pull did not complete under {layout}")
        if reference is None:
            reference = row
        elif (
            row["rounds"] != reference["rounds"]
            or row["total_messages"] != reference["total_messages"]
            or row["fingerprint"] != reference["fingerprint"]
        ):
            raise RuntimeError(
                f"large-n trajectory diverged under the {layout} layout"
            )
        entry["layouts"][layout] = {
            k: row[k]
            for k in (
                "storage_class",
                "wall_clock_s",
                "rounds",
                "completed",
                "total_messages",
                "peak_rss_mb",
                "storage_mb",
            )
        }
    entry["fingerprint"] = reference["fingerprint"]
    entry["fingerprints_match"] = True
    return entry


def protocol_entry(protocol, graph, seed: int, repeats: int) -> Dict[str, object]:
    wall, result = best_of(lambda: protocol.run(graph, rng=seed), repeats)
    active_name = backends.active().name
    per_backend = {}
    for name, backend in available_backends().items():
        if name == active_name:
            # The headline measurement above already ran on this backend.
            per_backend[name] = round(wall * 1000, 4)
            continue
        with backends.use(backend):
            backend_wall, backend_result = best_of(
                lambda: protocol.run(graph, rng=seed), repeats
            )
        # Trajectories are backend-invariant; a mismatch here means a broken
        # kernel, not noise — refuse to record garbage.  Compare the full
        # outcome, not just the round count: near-miss row corruption can
        # finish in the same number of rounds.
        if (
            backend_result.rounds != result.rounds
            or backend_result.completed != result.completed
            or backend_result.total_messages() != result.total_messages()
            or backend_result.knowledge != result.knowledge
        ):
            raise RuntimeError(
                f"{protocol.name} trajectory diverged on backend {name}"
            )
        per_backend[name] = round(backend_wall * 1000, 4)
    return {
        "completed": bool(result.completed),
        "rounds": int(result.rounds),
        "wall_clock_s": round(wall, 6),
        "rounds_per_s": round(result.rounds / wall, 2) if wall > 0 else None,
        "total_messages": int(result.total_messages()),
        "backend_wall_clock_ms": per_backend,
        "saturation_filter": saturation_filter_entry(result),
    }


def simd_entry(n: int, repeats: int) -> Optional[Dict[str, object]]:
    """Per-kernel scalar-vs-SIMD timings on the serial C backend.

    Times the swap-form exchange round, the scatter batch and the fused
    recount at every instruction-set level this CPU can run (scalar / sse2 /
    avx2 / avx512, :func:`repro.engine._ckernel.set_simd_level`), plus a
    ``REPRO_DISABLE_SIMD=1`` control run in a fresh subprocess proving the
    environment override actually lands on the scalar path.
    """
    if not _ckernel.available():
        return None
    rng = make_rng(31)
    km = KnowledgeMatrix(n)
    nodes = np.arange(n, dtype=np.int64)
    targets = rng.integers(0, n, n).astype(np.int64)
    senders = rng.integers(0, n, 2 * n).astype(np.int64)
    receivers = rng.integers(0, n // 2, 2 * n).astype(np.int64)
    mask = km.full_row_mask()
    detected = _ckernel.simd_detected()
    original = _ckernel.simd_active()
    entry: Dict[str, object] = {
        "n": n,
        "detected": _ckernel.simd_name(detected),
        "active": _ckernel.simd_name(),
        "disabled_by_env": bool(os.environ.get("REPRO_DISABLE_SIMD")),
        "levels": {},
    }
    try:
        with backends.use(backends.CSerialBackend()):
            for level in range(detected + 1):
                _ckernel.set_simd_level(level)
                exchange, _ = best_of(
                    lambda: km.apply_exchange(nodes, targets), repeats
                )
                scatter, _ = best_of(
                    lambda: km.apply_transmissions(senders, receivers), repeats
                )
                recount, _ = best_of(lambda: km.count_missing(mask, nodes), repeats)
                entry["levels"][_ckernel.simd_name(level)] = {
                    "exchange_round_ms": round(exchange * 1000, 4),
                    "scatter_batch_ms": round(scatter * 1000, 4),
                    "recount_ms": round(recount * 1000, 4),
                }
    finally:
        _ckernel.set_simd_level(original)
    levels = entry["levels"]
    best_name = _ckernel.simd_name(detected)
    if "scalar" in levels and best_name in levels and best_name != "scalar":
        entry["exchange_simd_speedup"] = round(
            levels["scalar"]["exchange_round_ms"]
            / levels[best_name]["exchange_round_ms"],
            2,
        )
    # Control run: REPRO_DISABLE_SIMD must force the scalar dispatch in a
    # fresh process (the env var is read once at library load).
    src_dir = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    control = subprocess.run(
        [
            sys.executable,
            "-c",
            (
                "import sys, json; sys.path.insert(0, %r); "
                "from repro.engine import _ckernel; "
                "print(json.dumps({'available': _ckernel.available(), "
                "'active': _ckernel.simd_name() if _ckernel.available() else None}))"
            )
            % src_dir,
        ],
        env={**os.environ, "REPRO_DISABLE_SIMD": "1"},
        capture_output=True,
        text=True,
    )
    if control.returncode == 0:
        entry["disable_simd_control"] = json.loads(
            control.stdout.strip().splitlines()[-1]
        )
    return entry


def saturation_filter_entry(result) -> Optional[Dict[str, object]]:
    """The saturation-filter hit rate of one finished protocol run."""
    stats = getattr(result.knowledge, "filter_stats", None)
    if not stats or not stats.get("rounds"):
        return None
    edges = int(stats["edges"])
    dropped = int(stats["edges_dropped"])
    return {
        "filtered_rounds": int(stats["rounds"]),
        "edges_seen": edges,
        "edges_dropped": dropped,
        "promotions": int(stats["promotions"]),
        "drop_rate": round(dropped / edges, 4) if edges else None,
    }


def kernel_entry(n: int, repeats: int) -> Dict[str, object]:
    """Raw kernel micro-timings: one exchange round and one scatter batch.

    The headline numbers run on the active backend; the ``backends`` block
    repeats both measurements on every installed backend, and
    ``thread_scaling`` times the exchange round with the thread count forced
    to each value in :data:`SCALING_THREADS` (``shard_work=1``, i.e. the
    small-batch cutoff disabled) — the measurement that justifies the
    cutoff: below it, pool dispatch costs more than it buys.
    """
    rng = make_rng(13)
    km = KnowledgeMatrix(n)
    nodes = np.arange(n, dtype=np.int64)
    targets = rng.integers(0, n, n).astype(np.int64)
    exchange_wall, _ = best_of(lambda: km.apply_exchange(nodes, targets), repeats)

    senders = rng.integers(0, n, 2 * n).astype(np.int64)
    receivers = rng.integers(0, n // 2, 2 * n).astype(np.int64)
    scatter_wall, _ = best_of(
        lambda: km.apply_transmissions(senders, receivers), repeats
    )
    entry = {
        "exchange_round_ms": round(exchange_wall * 1000, 4),
        "scatter_batch_ms": round(scatter_wall * 1000, 4),
        "backends": {},
        "thread_scaling": {},
    }
    for name, backend in available_backends().items():
        with backends.use(backend):
            b_exchange, _ = best_of(
                lambda: km.apply_exchange(nodes, targets), repeats
            )
            b_scatter, _ = best_of(
                lambda: km.apply_transmissions(senders, receivers), repeats
            )
        entry["backends"][name] = {
            "exchange_round_ms": round(b_exchange * 1000, 4),
            "scatter_batch_ms": round(b_scatter * 1000, 4),
        }
    if _ckernel.available():
        for threads in SCALING_THREADS:
            if threads == 1:
                backend = backends.CSerialBackend()
            else:
                backend = backends.CThreadsBackend(
                    max_threads=threads, shard_work=1
                )
            with backends.use(backend):
                wall, _ = best_of(
                    lambda: km.apply_exchange(nodes, targets), repeats
                )
            entry["thread_scaling"][str(threads)] = round(wall * 1000, 4)
    entry.update(frontier_phase_entry(n, repeats))
    return entry


def frontier_phase_entry(n: int, repeats: int) -> Dict[str, object]:
    """Frontier-phase timings: the first 5 exchange rounds from a cold start.

    Early rounds are where the sparsity-aware path earns its keep, so this
    times the identical channel sequence on a fresh ``FrontierKnowledge``
    versus a fresh dense ``KnowledgeMatrix`` (state construction included —
    protocol runs pay it too).  Five rounds cover the sparse regime and the
    first dense hand-offs at every benchmarked size.
    """
    rng = make_rng(29)
    rounds = []
    for _ in range(5):
        callers = np.arange(n, dtype=np.int64)
        rounds.append((callers, rng.integers(0, n, n).astype(np.int64)))

    def run(cls):
        km = cls(n)
        for callers, targets in rounds:
            km.apply_exchange(callers, targets)
        return km

    dense_wall, _ = best_of(lambda: run(KnowledgeMatrix), repeats)
    frontier_wall, result = best_of(lambda: run(FrontierKnowledge), repeats)
    return {
        "early5_dense_ms": round(dense_wall * 1000, 4),
        "early5_frontier_ms": round(frontier_wall * 1000, 4),
        "early5_frontier_speedup": round(dense_wall / frontier_wall, 2)
        if frontier_wall > 0
        else None,
        "frontier_rows_after5": round(result.frontier_fraction(), 4),
    }


def memory_kernel_entry(graph, repeats: int) -> Dict[str, object]:
    """Memory-model micro-timings: Phase I tree build and Phase II+III replay.

    Both measurements include construction of their fresh per-run state
    (knowledge matrix, ledger, ring buffer) so they reflect what one tree
    costs inside a full protocol run.
    """
    from repro.core.node_memory import NodeMemory
    from repro.engine.metrics import TransmissionLedger

    protocol = MemoryGossiping(leader=0)
    schedule = protocol.params.resolve(graph.n)

    def build():
        knowledge = KnowledgeMatrix(graph.n)
        ledger = TransmissionLedger(graph.n)
        memory = NodeMemory(graph.n, schedule.fanout)
        tree = protocol._build_tree(
            graph, knowledge, ledger, make_rng(17), schedule, 0, memory, alive=None
        )
        return tree

    build_wall, tree = best_of(build, repeats)

    def replay(knowledge_cls):
        knowledge = knowledge_cls(graph.n)
        ledger = TransmissionLedger(graph.n)
        protocol._gather(
            tree, knowledge, ledger, alive=None, contacts=schedule.gather_contacts
        )
        protocol._replay_broadcast(
            tree, knowledge, ledger, alive=None, contacts=schedule.gather_contacts
        )
        return knowledge

    replay_wall, _ = best_of(lambda: replay(KnowledgeMatrix), repeats)
    # The same replay on frontier knowledge: Phase II gathers are word-sparse
    # (most rows hold a couple of words), Phase III ratchets dense.
    replay_frontier_wall, _ = best_of(lambda: replay(FrontierKnowledge), repeats)
    return {
        "tree_build_ms": round(build_wall * 1000, 4),
        "replay_ms": round(replay_wall * 1000, 4),
        "replay_frontier_ms": round(replay_frontier_wall * 1000, 4),
        "tree_push_edges": int(tree.num_push_edges),
        "tree_pull_edges": int(tree.num_pull_edges),
    }


def aggregate_query_entry(repeats: int) -> Optional[Dict[str, object]]:
    """Scan-vs-index aggregate-query timings over a synthetic result store.

    Builds a store of ``n_configs * repetitions`` records in a temp
    directory, then times the same grouped aggregate (and per-metric stats)
    two ways: a cold full-JSONL-scan recompute per call, and the warm
    SQLite query index (each call still re-verifies the indexed prefix
    CRC).  Both answers are required to be identical before anything is
    recorded.  ``index_build_s`` is one from-scratch ``rebuild()``.
    """
    import tempfile

    from repro.analysis.statistics import aggregate_records
    from repro.io import ResultStore, index_available

    if not index_available():
        return None
    n_configs, repetitions = 500, 3
    group_by, metrics = ["n"], ["rounds", "messages"]
    with tempfile.TemporaryDirectory() as tmp:
        rng = make_rng(41)
        store = ResultStore(tmp)
        for c in range(n_configs):
            for r in range(repetitions):
                store.append(
                    "bench",
                    key=["cfg", c],
                    params={"c": c},
                    repetition=r,
                    seed=c * 10 + r,
                    record={
                        "n": 64 * (c % 20 + 1),
                        "rounds": float(rng.uniform(1.0, 50.0)),
                        "messages": int(rng.integers(1_000, 100_000)),
                        "protocol": ("push-pull", "fast-gossiping")[c % 2],
                    },
                )

        def scan_aggregate():
            scan = ResultStore(tmp, index=False)
            pairs = scan.completed_entries("bench")
            records = [pairs[pair]["record"] for pair in sorted(pairs)]
            scan.close()
            return aggregate_records(records, group_by, metrics)

        index = store.query_index
        build_wall, _ = best_of(lambda: index.rebuild("bench"), 1)
        scan_wall, scan_rows = best_of(scan_aggregate, repeats)
        index_wall, index_rows = best_of(
            lambda: index.aggregate("bench", group_by, metrics), repeats
        )
        if index_rows != scan_rows:
            raise RuntimeError("index-served aggregate diverged from the JSONL scan")
        stats_wall, _ = best_of(lambda: index.stats("bench", metrics), repeats)
        store.close()
    return {
        "records": n_configs * repetitions,
        "group_by": group_by,
        "metrics": metrics,
        "index_build_s": round(build_wall, 6),
        "scan_aggregate_ms": round(scan_wall * 1000, 4),
        "index_aggregate_ms": round(index_wall * 1000, 4),
        "index_speedup": round(scan_wall / index_wall, 2) if index_wall > 0 else None,
        "index_stats_ms": round(stats_wall * 1000, 4),
    }


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--_child":
        return _child_main(sys.argv[2])
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_kernel.json"),
        help="output JSON path (default: repository BENCH_kernel.json)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="only run the smallest size"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per measurement"
    )
    parser.add_argument(
        "--skip-large",
        action="store_true",
        help="skip the n=100000 per-layout section (implied by --quick)",
    )
    args = parser.parse_args()

    sizes = SIZES[:1] if args.quick else SIZES
    report: Dict[str, object] = {
        "schema": "repro-bench-kernel/5",
        "description": (
            "Kernel benchmark baseline: full protocol runs and raw knowledge-"
            "kernel operations at fixed seeds (graph rng=5; protocol rngs: "
            "push-pull=1, fast-gossiping=2, memory=3); wall-clock is best-of-"
            f"{args.repeats}.  Per-backend timings and the forced-thread "
            "exchange scaling live under sizes.<n>.kernel / the protocols' "
            "backend_wall_clock_ms.  peak_rss_mb fields are ru_maxrss of a "
            "fresh subprocess per measurement (graph construction included); "
            "large_n runs full push-pull per storage layout at n=100000; "
            "aggregate_query times the same grouped aggregate over a "
            "synthetic result store via a full JSONL scan vs the SQLite "
            "query index (docs/caching.md).  Schema 5 adds the simd section "
            "(per-kernel scalar-vs-SIMD timings per instruction-set level at "
            "the largest size, plus a REPRO_DISABLE_SIMD control subprocess), "
            "the active/detected ISA in the header, and each protocol's "
            "saturation_filter hit rate (docs/architecture.md)."
        ),
        "compiled_kernel": _ckernel.available(),
        "backend": backends.active().describe(),
        "simd": backends.simd_info() if _ckernel.available() else None,
        "cpu_count": os.cpu_count(),
        "frontier": {
            "enabled": not bool(os.environ.get("REPRO_DISABLE_FRONTIER")),
            "crossover": float(
                os.environ.get("REPRO_FRONTIER_CROSSOVER", _DEFAULT_CROSSOVER)
            ),
            "min_words": _FRONTIER_MIN_WORDS,
        },
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "sizes": {},
    }

    for n in sizes:
        print(f"n={n}: generating paper graph ...", flush=True)
        graph = erdos_renyi(
            n, paper_edge_probability(n), rng=GRAPH_SEED, require_connected=True
        )
        entry: Dict[str, object] = {
            "kernel": kernel_entry(n, args.repeats),
            "memory_kernel": memory_kernel_entry(graph, args.repeats),
        }
        protocols = {
            "push-pull": PushPullGossip(),
            "fast-gossiping": FastGossiping(),
            "memory": MemoryGossiping(leader=0),
        }
        for name, protocol in protocols.items():
            print(f"n={n}: timing {name} ...", flush=True)
            entry[name] = protocol_entry(
                protocol, graph, PROTOCOL_SEEDS[name], args.repeats
            )
            # Peak RSS of one isolated run (fresh subprocess: ru_maxrss is a
            # process-lifetime high-water mark and would otherwise report
            # whatever earlier measurement was biggest).
            rss_row = measure_in_subprocess(n, name, PROTOCOL_SEEDS[name])
            entry[name]["peak_rss_mb"] = rss_row["peak_rss_mb"]
            entry[name]["storage_mb"] = rss_row["storage_mb"]
            seed_ms = SEED_REFERENCE_MS.get(str(n), {}).get(name)
            if seed_ms is not None:
                entry[name]["seed_wall_clock_ms"] = seed_ms
                entry[name]["speedup_vs_seed"] = round(
                    seed_ms / (entry[name]["wall_clock_s"] * 1000), 2
                )
        report["sizes"][str(n)] = entry

    print("simd: per-ISA kernel timings ...", flush=True)
    simd = simd_entry(max(sizes), args.repeats)
    if simd is not None:
        report["simd"] = simd

    if not (args.quick or args.skip_large):
        report["large_n"] = large_n_entry(LARGE_N, repeats=1)

    print("aggregate-query: JSONL scan vs SQLite index ...", flush=True)
    aggregate_query = aggregate_query_entry(args.repeats)
    if aggregate_query is not None:
        report["aggregate_query"] = aggregate_query

    output = os.path.abspath(args.output)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {output}")
    for n, entry in report["sizes"].items():
        for proto in ("push-pull", "fast-gossiping", "memory"):
            row = entry[proto]
            print(
                f"  n={n:>6} {proto:<15} rounds={row['rounds']:>4} "
                f"wall={row['wall_clock_s']*1000:8.1f}ms "
                f"({row['rounds_per_s']} rounds/s) "
                f"rss={row['peak_rss_mb']}MB"
            )
        mk = entry["memory_kernel"]
        print(
            f"  n={n:>6} {'memory-kernel':<15} tree={mk['tree_build_ms']:.2f}ms "
            f"replay={mk['replay_ms']:.2f}ms "
            f"replay-frontier={mk['replay_frontier_ms']:.2f}ms"
        )
        kr = entry["kernel"]
        print(
            f"  n={n:>6} {'frontier-early5':<15} dense={kr['early5_dense_ms']:.2f}ms "
            f"frontier={kr['early5_frontier_ms']:.2f}ms "
            f"({kr['early5_frontier_speedup']}x)"
        )
        if kr["thread_scaling"]:
            scaling = "  ".join(
                f"t={t}:{ms:.2f}ms" for t, ms in kr["thread_scaling"].items()
            )
            print(f"  n={n:>6} {'exchange-threads':<15} {scaling}")
    simd_report = report.get("simd")
    if simd_report:
        lines = "  ".join(
            f"{name}:{row['exchange_round_ms']:.2f}ms"
            for name, row in simd_report["levels"].items()
        )
        print(
            f"  simd (n={simd_report['n']}, detected={simd_report['detected']}) "
            f"exchange {lines}"
        )
    for n, entry in report["sizes"].items():
        for proto in ("push-pull", "fast-gossiping", "memory"):
            sat = entry[proto].get("saturation_filter")
            if sat:
                print(
                    f"  n={n:>6} {proto:<15} filter: {sat['filtered_rounds']} rounds "
                    f"drop_rate={sat['drop_rate']} promotions={sat['promotions']}"
                )
    aq = report.get("aggregate_query")
    if aq:
        print(
            f"  aggregate-query ({aq['records']} records) "
            f"scan={aq['scan_aggregate_ms']:.2f}ms "
            f"index={aq['index_aggregate_ms']:.2f}ms "
            f"({aq['index_speedup']}x)  stats={aq['index_stats_ms']:.2f}ms"
        )
    large = report.get("large_n")
    if large:
        print(f"  large-n={large['n']} push-pull per storage layout:")
        for layout, row in large["layouts"].items():
            print(
                f"    {layout:<7} rounds={row['rounds']:>3} "
                f"wall={row['wall_clock_s']:7.2f}s "
                f"rss={row['peak_rss_mb']:>8}MB "
                f"storage={row['storage_mb']:>8}MB"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
