"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on environments without the ``wheel`` package (e.g. offline containers).
"""

from setuptools import setup

setup()
