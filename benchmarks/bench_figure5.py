"""Benchmark E5 — regenerate Figure 5 (robustness threshold exceedance).

Paper reference: Figure 5 shows, for two graph sizes and a range of failed
node counts, the percentage of runs in which more than T additional healthy
messages were lost, for T ∈ {0, 10, 100}.  Expected: exceedance fractions for
larger thresholds are never higher than for smaller ones, and even thousands
of failures rarely lose more than a handful of additional messages.
"""

from __future__ import annotations

from repro.experiments import RobustnessDetailConfig, run_figure5
from repro.experiments.figure5 import figure5_columns

from _bench_utils import emit, run_once


def _config(scale: str) -> RobustnessDetailConfig:
    if scale == "paper":
        return RobustnessDetailConfig.paper_scale()
    return RobustnessDetailConfig(
        sizes=(512, 1024),
        thresholds=(0, 10, 100),
        failed_fractions=(0.05, 0.2, 0.4),
        repetitions=3,
    )


def test_figure5_threshold_exceedance(benchmark, scale):
    """Regenerate the Figure 5 exceedance fractions and check their ordering."""
    config = _config(scale)
    result = run_once(benchmark, run_figure5, config)
    emit(
        result,
        figure5_columns(config.thresholds),
        note=(
            "Expected (paper Fig. 5): exceedance fractions are monotone in T\n"
            "(losing >100 messages is rarer than losing >0) and stay low for\n"
            "moderate failure counts."
        ),
    )
    for row in result.rows:
        assert row["exceed_T100"] <= row["exceed_T10"] <= row["exceed_T0"]
    moderate = [r for r in result.rows if r["failed_fraction"] <= 0.05]
    assert all(r["exceed_T100"] == 0.0 for r in moderate)
