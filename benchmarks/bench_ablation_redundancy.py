"""Benchmark E11 — gather-redundancy ablation of the memory model.

Compares the robustness of Algorithm 2's gathering phase when it replays all
recorded Phase I contacts (the literal pseudocode, several disjoint paths per
message) against a strict spanning tree (only first-informing contacts).
Expected: identical behaviour without failures, but the strict tree loses
markedly more healthy messages once a large fraction of nodes crash — it is
the configuration whose loss ratios resemble the magnitudes of the paper's
Figure 2 most closely.
"""

from __future__ import annotations

from repro.experiments import RobustnessConfig
from repro.experiments.ablation_redundancy import (
    REDUNDANCY_COLUMNS,
    run_redundancy_ablation,
)

from _bench_utils import emit, run_once


def _config(scale: str) -> RobustnessConfig:
    if scale == "paper":
        return RobustnessConfig.paper_scale()
    return RobustnessConfig(
        size=1024,
        failed_fractions=(0.0, 0.1, 0.3),
        repetitions=2,
    )


def test_redundancy_ablation(benchmark, scale):
    """Regenerate the redundancy ablation and check the expected ordering."""
    result = run_once(benchmark, run_redundancy_ablation, _config(scale))
    emit(
        result,
        REDUNDANCY_COLUMNS,
        note=(
            "Expected: no losses without failures in either mode; under heavy\n"
            "failures the strict 'first'-contact tree loses at least as many\n"
            "messages as the redundant 'all'-contacts structure."
        ),
    )
    by_key = {(row["gather_contacts"], row["failed"]): row for row in result.rows}
    failed_counts = sorted({row["failed"] for row in result.rows})
    # No losses in the failure-free runs for either mode.
    assert by_key[("all", 0)]["additional_lost"] == 0.0
    assert by_key[("first", 0)]["additional_lost"] == 0.0
    # The strict tree is never more robust than the redundant structure.
    largest = failed_counts[-1]
    assert (
        by_key[("first", largest)]["additional_lost"]
        >= by_key[("all", largest)]["additional_lost"]
    )
    # The redundant structure costs at least as many packets per node.
    assert (
        by_key[("all", 0)]["messages_per_node"]
        >= by_key[("first", 0)]["messages_per_node"]
    )
