"""Micro-benchmarks of single protocol runs and substrate operations.

These are conventional pytest-benchmark timings (several rounds) of the hot
building blocks: one full run of each gossiping protocol on a fixed graph,
graph sampling, and the packed-bitset knowledge updates.  They are not tied to
a specific paper figure; they exist so that performance regressions in the
simulator itself are visible independently of the experiment harnesses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FastGossiping, MemoryGossiping, PushPullGossip, erdos_renyi
from repro.engine import KnowledgeMatrix, make_rng
from repro.graphs import paper_edge_probability


N = 1024


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, paper_edge_probability(N), rng=5, require_connected=True)


def test_push_pull_single_run(benchmark, graph):
    """One complete push-pull gossiping run on a 1024-node paper graph."""
    result = benchmark(lambda: PushPullGossip().run(graph, rng=1))
    assert result.completed


def test_fast_gossiping_single_run(benchmark, graph):
    """One complete fast-gossiping run on a 1024-node paper graph."""
    result = benchmark(lambda: FastGossiping().run(graph, rng=2))
    assert result.completed


def test_memory_gossiping_single_run(benchmark, graph):
    """One complete memory-model run on a 1024-node paper graph."""
    result = benchmark(lambda: MemoryGossiping(leader=0).run(graph, rng=3))
    assert result.completed


def test_graph_generation(benchmark):
    """Sampling G(n, log^2 n / n) with the vectorised skip sampler."""
    graph = benchmark(lambda: erdos_renyi(N, paper_edge_probability(N), rng=7))
    assert graph.n == N


def test_neighbor_sampling(benchmark, graph):
    """Sampling one random neighbour for every node (the per-round hot path)."""
    rng = make_rng(11)
    nodes = np.arange(graph.n)
    samples = benchmark(lambda: graph.sample_neighbors(nodes, rng))
    assert samples.shape == (graph.n,)


def test_knowledge_round_update(benchmark, graph):
    """One synchronous round of push-pull knowledge unions on the bitset matrix."""
    rng = make_rng(13)
    knowledge = KnowledgeMatrix(graph.n)
    nodes = np.arange(graph.n)

    def one_round():
        targets = graph.sample_neighbors(nodes, rng)
        snapshot = knowledge.snapshot()
        knowledge.apply_transmissions(nodes, targets, snapshot)
        knowledge.apply_transmissions(targets, nodes, snapshot)
        return knowledge

    benchmark(one_round)
    assert knowledge.total_known() >= graph.n


def test_knowledge_exchange_update(benchmark, graph):
    """One synchronous exchange round through the vectorized kernel hot path.

    Unlike :func:`test_knowledge_round_update` this exercises the
    snapshot-free :meth:`KnowledgeMatrix.apply_exchange` entry point the
    protocols actually use (reusable double buffer / compiled kernel).
    """
    rng = make_rng(17)
    knowledge = KnowledgeMatrix(graph.n)
    nodes = np.arange(graph.n)

    def one_round():
        targets = graph.sample_neighbors(nodes, rng)
        return knowledge.apply_exchange(nodes, targets)

    benchmark(one_round)
    assert knowledge.total_known() >= graph.n


def test_transmission_scatter_batch(benchmark, graph):
    """Applying a randomized transmission batch with heavy receiver collisions."""
    rng = make_rng(19)
    knowledge = KnowledgeMatrix(graph.n)
    senders = rng.integers(0, graph.n, 2 * graph.n)
    receivers = rng.integers(0, graph.n // 2, 2 * graph.n)

    benchmark(lambda: knowledge.apply_transmissions(senders, receivers))
    assert knowledge.total_known() >= graph.n
