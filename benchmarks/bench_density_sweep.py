"""Benchmark E7 — density sweep extension (the paper's titular question).

At fixed ``n`` the expected degree is swept from ``log²n`` up to the complete
graph.  Expected: the per-node message cost of each gossiping protocol is
essentially flat across densities — the influence of graph density on
randomized gossiping is small, which is the paper's thesis.
"""

from __future__ import annotations

from repro.experiments import DensitySweepConfig, run_density_sweep
from repro.experiments.density_sweep import DENSITY_COLUMNS

from _bench_utils import emit, run_once


def _config(scale: str) -> DensitySweepConfig:
    if scale == "paper":
        return DensitySweepConfig.paper_scale()
    return DensitySweepConfig(size=512, repetitions=2)


def test_density_sweep_flatness(benchmark, scale):
    """Regenerate the density sweep and check the flatness of the cost curves."""
    result = run_once(benchmark, run_density_sweep, _config(scale))
    emit(
        result,
        DENSITY_COLUMNS,
        note=(
            "Expected (paper thesis): per-node gossiping cost is essentially flat\n"
            "from G(n, log^2 n / n) up to the complete graph."
        ),
    )
    flatness = result.metadata["max_over_min_cost_ratio"]
    assert flatness["memory"] < 2.0
    assert flatness["fast-gossiping"] < 2.5
    assert flatness["push-pull"] < 2.0
