"""Benchmark E10 — leader-election cost (Algorithm 3 / Theorem 2).

Theorem 2: with leader election the memory-model gossiping needs
``O(n log log n)`` transmissions.  The benchmark measures the election's
per-node packet cost versus ``n`` for the literal pseudocode variant
(``Theta(log n)`` per node) and the budgeted variant (``Theta(log log n)``
per node), and verifies the election is always won by exactly one node.
"""

from __future__ import annotations

from repro.experiments import LeaderElectionConfig, run_leader_election_cost
from repro.experiments.leader_election_cost import ELECTION_COLUMNS

from _bench_utils import emit, run_once


def _config(scale: str) -> LeaderElectionConfig:
    if scale == "paper":
        return LeaderElectionConfig.paper_scale()
    return LeaderElectionConfig(sizes=(256, 512, 1024), repetitions=2)


def test_leader_election_cost(benchmark, scale):
    """Regenerate the election-cost table and check uniqueness + cost ordering."""
    result = run_once(benchmark, run_leader_election_cost, _config(scale))
    emit(
        result,
        ELECTION_COLUMNS,
        note=(
            "Expected: a unique leader in every run; the budgeted variant needs\n"
            "markedly fewer packets per node than the literal pseudocode variant."
        ),
    )
    assert all(row["unique_fraction"] == 1.0 for row in result.rows)
    sizes = sorted({row["n"] for row in result.rows})
    for n in sizes:
        variants = {
            row["variant"]: row["messages_per_node"]
            for row in result.rows
            if row["n"] == n
        }
        assert variants["budgeted"] < variants["pseudocode"]
