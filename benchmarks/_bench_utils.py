"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper at a laptop
scale, times it with pytest-benchmark, and prints the reproduced rows/series
so that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` leaves
an auditable record of the reproduction next to the timing numbers.

Scale can be increased via the ``REPRO_BENCH_SCALE`` environment variable:
``quick`` (default) or ``paper`` (larger sizes, substantially slower).
"""

from __future__ import annotations

import os

__all__ = ["bench_scale", "run_once", "emit"]


def bench_scale() -> str:
    """Benchmark scale selected via the REPRO_BENCH_SCALE environment variable."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick").lower()


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing.

    The experiments are too expensive to repeat for statistical timing, and
    their interesting output is the reproduced table, not the wall-clock
    distribution, so a single round is sufficient.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(result, columns=None, note: str = "") -> None:
    """Print an experiment result table into the captured benchmark output."""
    print()
    print("=" * 78)
    print(result.to_table(columns))
    if note:
        print(note)
    print("=" * 78)
