"""Benchmark E3 — regenerate Figure 2 (memory-model robustness, single size).

Paper reference: Figure 2 shows, on a 10⁶-node ``G(n, log²n/n)`` graph with
three independently built communication trees, the ratio of additional lost
healthy messages to the number of failed nodes ``F`` (failures injected right
before Phase II).  Expected shape: ratio ≈ 0 for small ``F`` and growing once
a substantial fraction of the network fails.
"""

from __future__ import annotations

from repro.experiments import RobustnessConfig, run_figure2
from repro.experiments.figure2 import FIGURE2_COLUMNS

from _bench_utils import emit, run_once


def _config(scale: str) -> RobustnessConfig:
    if scale == "paper":
        return RobustnessConfig.paper_scale()
    return RobustnessConfig(
        size=1024,
        failed_fractions=(0.0, 0.05, 0.1, 0.2, 0.4),
        repetitions=2,
    )


def test_figure2_robustness_ratio(benchmark, scale):
    """Regenerate the Figure 2 loss-ratio curve and check its shape."""
    result = run_once(benchmark, run_figure2, _config(scale))
    emit(
        result,
        FIGURE2_COLUMNS,
        note=(
            "Expected (paper Fig. 2): loss ratio ~0 for small F, increasing once a\n"
            "large fraction of the network fails; never catastrophic."
        ),
    )
    rows = sorted(result.rows, key=lambda r: r["failed"])
    assert rows[0]["additional_lost"] == 0.0
    # Small failure counts lose (almost) nothing thanks to the 3-tree redundancy.
    small = [r for r in rows if r["failed_fraction"] <= 0.05]
    assert all(r["loss_ratio"] <= 0.05 for r in small)
    # The ratio does not decrease from the smallest to the largest failure count.
    assert rows[-1]["loss_ratio"] >= rows[0]["loss_ratio"]
