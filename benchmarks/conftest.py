"""Pytest fixtures shared by the benchmark harnesses."""

from __future__ import annotations

import pytest

from _bench_utils import bench_scale


def pytest_configure(config) -> None:
    """Show the reproduced tables in the terminal output.

    Each benchmark prints the rows it regenerated; pytest captures stdout of
    passing tests, so request the "passed with output" report section (the
    equivalent of ``-rP``) whenever the benchmark directory is collected.
    This keeps ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
    self-contained: timings *and* reproduced series end up in the log.
    """
    chars = getattr(config.option, "reportchars", "") or ""
    if "P" not in chars and "A" not in chars:
        config.option.reportchars = chars + "P"


@pytest.fixture(scope="session")
def scale() -> str:
    """The selected benchmark scale (``quick`` or ``paper``)."""
    return bench_scale()
