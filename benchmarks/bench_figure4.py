"""Benchmark E2 — regenerate Figure 4 (fast-gossiping detail view).

Paper reference: Figure 4 zooms into the fast-gossiping series of Figure 1 on
a finer grid of sizes; the cost jumps whenever a ceil'd phase length grows and
*decreases slightly* between jumps because the random-walk probability
``1/log n`` keeps shrinking while the schedule stays constant.
"""

from __future__ import annotations

from repro.experiments import SizeSweepConfig, run_figure4
from repro.experiments.figure4 import FIGURE4_COLUMNS, default_figure4_config

from _bench_utils import emit, run_once


def _config(scale: str) -> SizeSweepConfig:
    if scale == "paper":
        return SizeSweepConfig(
            sizes=(2048, 3072, 4096, 6144, 8192, 12288, 16384),
            repetitions=3,
            protocols=("fast-gossiping",),
        )
    return default_figure4_config()


def test_figure4_fast_gossiping_detail(benchmark, scale):
    """Regenerate the Figure 4 series and check the cost stays in its envelope."""
    result = run_once(benchmark, run_figure4, _config(scale))
    emit(
        result,
        FIGURE4_COLUMNS,
        note=(
            "Expected (paper Fig. 4): per-node cost moves in plateaus tied to the\n"
            "resolved schedule; within a plateau the cost tends to decrease with n."
        ),
    )
    costs = [row["messages_per_node"] for row in result.rows]
    # The cost stays within a narrow envelope across the grid (no blow-up).
    assert max(costs) < 3 * min(costs)
    assert "within_plateau_deltas" in result.metadata
