"""Benchmark E8 — broadcast-vs-gossip density separation ablation.

Background of the paper: efficient broadcasting (Karp et al.) achieves
``O(log log n)`` packets per node on complete graphs, which is provably not
achievable on sparse random graphs, while gossiping (this paper) is equally
cheap on both.  The ablation measures both tasks on both topologies.  At
laptop scales the asymptotic broadcast separation is faint, so the assertions
only check the gossiping side (flat across topologies) and report the
broadcast numbers for inspection.
"""

from __future__ import annotations

from repro.experiments import BroadcastAblationConfig, run_broadcast_ablation
from repro.experiments.broadcast_vs_gossip import BROADCAST_COLUMNS

from _bench_utils import emit, run_once


def _config(scale: str) -> BroadcastAblationConfig:
    if scale == "paper":
        return BroadcastAblationConfig.paper_scale()
    return BroadcastAblationConfig(sizes=(256, 512, 1024), repetitions=2)


def test_broadcast_vs_gossip_separation(benchmark, scale):
    """Regenerate the ablation table; gossiping must be topology-insensitive."""
    result = run_once(benchmark, run_broadcast_ablation, _config(scale))
    emit(
        result,
        BROADCAST_COLUMNS,
        note=(
            "Gossiping (memory model) costs are expected to match across sparse and\n"
            "complete topologies; the broadcasting separation is asymptotic and only\n"
            "becomes pronounced at much larger n (reported here for reference)."
        ),
    )
    sizes = sorted({row["n"] for row in result.rows})
    for n in sizes:
        gossip = {
            row["topology"]: row["messages_per_node"]
            for row in result.rows
            if row["n"] == n and row["task"] == "gossip-memory"
        }
        # Same constant on both topologies (within 35%).
        assert abs(gossip["sparse"] - gossip["complete"]) <= 0.35 * gossip["complete"]
    # Gossiping cost stays bounded while n quadruples.
    gossip_costs = [
        row["messages_per_node"] for row in result.rows if row["task"] == "gossip-memory"
    ]
    assert max(gossip_costs) < 10.0
