"""Benchmark E12 — Erdős–Rényi vs configuration-model substrate comparison.

Section 1.3 of the paper: both main results hold for both random-graph models.
Expected: for every protocol and size the per-node cost on the two families
differs by only a small relative gap.
"""

from __future__ import annotations

from repro.experiments import SizeSweepConfig
from repro.experiments.graph_models import GRAPH_MODEL_COLUMNS, run_graph_model_comparison

from _bench_utils import emit, run_once


def _config(scale: str) -> SizeSweepConfig:
    if scale == "paper":
        return SizeSweepConfig(sizes=(2048, 8192), repetitions=3)
    return SizeSweepConfig(sizes=(512, 1024), repetitions=2)


def test_graph_model_comparison(benchmark, scale):
    """Regenerate the model-comparison table and check the families agree."""
    result = run_once(benchmark, run_graph_model_comparison, _config(scale))
    emit(
        result,
        GRAPH_MODEL_COLUMNS,
        note=(
            "Expected (paper §1.3): Erdős–Rényi and configuration-model graphs of\n"
            "the same expected degree behave alike for every gossiping protocol."
        ),
    )
    for gap in result.metadata["relative_gaps"]:
        assert gap["relative_gap"] < 0.35, gap
