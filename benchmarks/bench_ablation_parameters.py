"""Benchmark E9 — fast-gossiping parameter-tuning ablation.

Section 5 of the paper emphasises that tuning the algorithm parameters
substantially reduces the communication overhead.  The ablation sweeps the
random-walk probability factor and the broadcast sub-phase length of
Algorithm 1 and reports the resulting cost/time trade-off.
"""

from __future__ import annotations

from repro.experiments import ParameterAblationConfig, run_parameter_ablation
from repro.experiments.ablation_parameters import ABLATION_COLUMNS

from _bench_utils import emit, run_once


def _config(scale: str) -> ParameterAblationConfig:
    if scale == "paper":
        return ParameterAblationConfig.paper_scale()
    return ParameterAblationConfig(
        size=512,
        walk_probability_factors=(0.5, 1.0, 2.0),
        broadcast_steps_factors=(0.5, 1.0),
        repetitions=2,
    )


def test_parameter_ablation(benchmark, scale):
    """Regenerate the parameter ablation grid and check every cell completed."""
    result = run_once(benchmark, run_parameter_ablation, _config(scale))
    emit(
        result,
        ABLATION_COLUMNS,
        note=(
            "All parameterisations must complete gossiping; the per-node cost\n"
            "varies with the walk probability and broadcast length (the tuning\n"
            "trade-off highlighted in Section 5 of the paper)."
        ),
    )
    assert all(row["completed"] for row in result.rows)
    costs = [row["messages_per_node"] for row in result.rows]
    # The ablation exposes a real trade-off: the grid spans a noticeable range.
    assert max(costs) > min(costs)
