"""Benchmark E1 — regenerate Figure 1 (messages per node vs graph size).

Paper reference: Figure 1 compares the average number of messages sent per
node for plain push–pull, fast-gossiping (Algorithm 1) and the memory model
(Algorithm 2) on ``G(n, log²n/n)`` with n from 10³ to 10⁶.  Expected shape:
push–pull grows ``Theta(log n)`` and is the most expensive; fast-gossiping is
cheaper with a widening gap; the memory model stays below a small constant.
"""

from __future__ import annotations

from repro.experiments import SizeSweepConfig, run_figure1
from repro.experiments.figure1 import FIGURE1_COLUMNS

from _bench_utils import emit, run_once


def _config(scale: str) -> SizeSweepConfig:
    if scale == "paper":
        return SizeSweepConfig.paper_scale()
    return SizeSweepConfig(sizes=(256, 512, 1024, 2048), repetitions=2)


def test_figure1_messages_per_node(benchmark, scale):
    """Regenerate the Figure 1 series and check the qualitative ordering."""
    result = run_once(benchmark, run_figure1, _config(scale))
    emit(
        result,
        FIGURE1_COLUMNS,
        note=(
            "Expected (paper Fig. 1): push-pull > fast-gossiping > memory at every n;\n"
            "push-pull grows with n, memory stays bounded by a small constant."
        ),
    )
    for n in {row["n"] for row in result.rows}:
        per_protocol = {
            row["protocol"]: row["messages_per_node"]
            for row in result.rows
            if row["n"] == n
        }
        assert per_protocol["memory"] < per_protocol["fast-gossiping"] < per_protocol["push-pull"]
    memory_costs = [r["messages_per_node"] for r in result.rows if r["protocol"] == "memory"]
    assert max(memory_costs) < 12.0
