"""Benchmark E4 — regenerate Figure 3 (robustness at two graph sizes).

Paper reference: Figure 3 repeats the Figure 2 study on 100,000- and
500,000-node graphs; the loss-ratio curve has the same qualitative shape at
both sizes.
"""

from __future__ import annotations

from repro.experiments import RobustnessConfig, run_figure3
from repro.experiments.figure3 import FIGURE3_COLUMNS

from _bench_utils import emit, run_once


def _setup(scale: str):
    if scale == "paper":
        return RobustnessConfig.paper_scale(size=8192), (8192, 16384)
    config = RobustnessConfig(
        size=512,
        failed_fractions=(0.0, 0.1, 0.3),
        repetitions=2,
    )
    return config, (512, 1024)


def test_figure3_two_sizes(benchmark, scale):
    """Regenerate the Figure 3 curves and check both sizes behave alike."""
    config, sizes = _setup(scale)
    result = run_once(benchmark, run_figure3, config, sizes=sizes)
    emit(
        result,
        FIGURE3_COLUMNS,
        note="Expected (paper Fig. 3): same qualitative loss-ratio shape at both sizes.",
    )
    for n in sizes:
        series = sorted(
            (r for r in result.rows if r["n"] == n), key=lambda r: r["failed"]
        )
        assert series[0]["additional_lost"] == 0.0
        assert series[-1]["loss_ratio"] >= series[0]["loss_ratio"]
