"""Benchmark E6 — regenerate Table 1 (simulation constants).

Paper reference: Table 1 lists the phase-length constants used in the
simulations of Algorithm 1 and Algorithm 2.  The benchmark resolves those
formulas for concrete sizes (including the paper's 10⁶) and verifies a few
hand-checked values.
"""

from __future__ import annotations

from repro.experiments import run_table1
from repro.experiments.table1 import TABLE1_COLUMNS

from _bench_utils import emit, run_once


def test_table1_constants(benchmark, scale):
    """Regenerate Table 1 for a list of sizes including the paper's 10^6."""
    sizes = [1024, 4096, 16384, 65536, 10**6]
    result = run_once(benchmark, run_table1, sizes)
    emit(
        result,
        TABLE1_COLUMNS,
        note="Values follow Table 1 of the paper (log base 2), resolved per n.",
    )
    lookup = {
        (row["n"], row["algorithm"], row["limit"]): row["value"] for row in result.rows
    }
    # Hand-checked values for n = 10^6 (log2 n ~ 19.93, loglog ~ 4.32).
    assert lookup[(10**6, "algorithm1_fast_gossiping", "number of steps")] == 6
    assert lookup[(10**6, "algorithm1_fast_gossiping", "number of rounds")] == 5
    assert (
        lookup[
            (
                10**6,
                "algorithm2_memory_model",
                "first loop, number of steps (multiple of 4)",
            )
        ]
        == 40
    )
    assert lookup[(10**6, "algorithm2_memory_model", "number of push steps")] == 19
